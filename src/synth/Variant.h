//===- Variant.h - Code-variant descriptors ---------------------*- C++ -*-===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptors for the parallel-reduction code versions Tangram can
/// synthesize (Section IV-B, Fig. 6). A code version assigns codelets to
/// the GPU software hierarchy:
///
///   grid level  — a compound codelet distributing the array over blocks
///                 with a tiled or strided pattern, combining per-block
///                 partials either through a second kernel launch or with
///                 atomic instructions on global memory (Section III-A);
///   block level — either a cooperative codelet directly, or a compound
///                 codelet distributing over threads (tiled/strided, with
///                 thread coarsening) whose per-thread partials a
///                 cooperative codelet (or serial thread-0 code) combines;
///   thread level— the serial atomic-autonomous codelet (Fig. 1a).
///
/// Cooperative codelet flavors (Fig. 1c, Fig. 3, Section III):
///   Tree        — shared-memory tree summation (Fig. 1c)
///   TreeShuffle — the same after the Fig. 4 warp-shuffle rewrite
///   SharedV1    — single shared accumulator, all threads atomic (Fig. 3a)
///   SharedV2    — per-warp tree + shared-atomic combine (Fig. 3b)
///   SharedV2Shuffle — Fig. 3b with the warp tree done by shuffles
///   SerialThread0   — thread 0 serially adds the partials (original
///                     Tangram fallback; never among the pruned set)
///
//===----------------------------------------------------------------------===//

#ifndef TANGRAM_SYNTH_VARIANT_H
#define TANGRAM_SYNTH_VARIANT_H

#include "transforms/GeneralTransforms.h"

#include <cstdint>
#include <string>

namespace tangram::synth {

using transforms::DistPattern;

/// How per-block partial results reach the final answer.
enum class GridCombine : unsigned char {
  SecondKernel, ///< Partials array + second kernel launch (Listing 1).
  GlobalAtomic, ///< atomicAdd on a single accumulator (Listing 2).
};

/// The cooperative codelet used directly or as the partials combiner.
enum class CoopKind : unsigned char {
  Tree,
  TreeShuffle,
  SharedV1,
  SharedV2,
  SharedV2Shuffle,
  SerialThread0,
};

const char *getCoopKindName(CoopKind K);
/// True for the shuffle-rewritten flavors.
bool coopUsesShuffle(CoopKind K);
/// True for the flavors using atomic instructions on shared memory.
bool coopUsesSharedAtomics(CoopKind K);

/// Feature category a version belongs to (the Section IV-B accounting).
enum class VariantCategory : unsigned char {
  Original,     ///< Expressible in original Tangram (Fig. 1 codelets only).
  GlobalAtomic, ///< Needs the Section III-A Map atomic APIs.
  SharedAtomic, ///< Needs the Section III-B shared atomic qualifiers.
  WarpShuffle,  ///< Needs the Section III-C shuffle pass.
};

const char *getVariantCategoryName(VariantCategory C);

/// One fully-specified code version plus its tunable parameters.
struct VariantDescriptor {
  // Structure.
  DistPattern GridDist = DistPattern::Tiled;
  GridCombine GridScheme = GridCombine::GlobalAtomic;
  /// True: block distributes over threads (thread-serial + combine);
  /// false: the cooperative codelet runs directly on the block's tile.
  bool BlockDistributes = false;
  DistPattern BlockDist = DistPattern::Tiled; ///< When BlockDistributes.
  CoopKind Coop = CoopKind::Tree;

  // Tunables (Section IV-C: "tuned using __tunable parameters").
  unsigned BlockSize = 256;
  unsigned Coarsen = 1; ///< Elements per thread when BlockDistributes.

  VariantCategory getCategory() const;
  bool usesSecondKernel() const {
    return GridScheme == GridCombine::SecondKernel;
  }

  /// Compact structural name, e.g. "DTA/DS.S+Vs" or "DTA/VA1".
  std::string getName() const;
  /// Fig. 6 label ("a".."p") when this version is one of the 16 the paper
  /// depicts; empty otherwise. Labels ignore tunables.
  std::string getFigure6Label() const;
  /// True when the paper colors this version as one of the 8 best.
  bool isPaperBest() const;

  /// Deterministic content hash over every field (structure AND tunables);
  /// stable across processes so it can key compiled-variant caches.
  uint64_t stableHash() const;

  /// Structural equality (ignores tunables).
  bool sameStructure(const VariantDescriptor &O) const {
    return GridDist == O.GridDist && GridScheme == O.GridScheme &&
           BlockDistributes == O.BlockDistributes &&
           (!BlockDistributes || BlockDist == O.BlockDist) &&
           Coop == O.Coop;
  }
};

} // namespace tangram::synth

#endif // TANGRAM_SYNTH_VARIANT_H
