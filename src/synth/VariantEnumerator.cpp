//===- VariantEnumerator.cpp - Search-space enumeration --------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "synth/VariantEnumerator.h"

using namespace tangram;
using namespace tangram::synth;

namespace {

/// The block-level structure axis: either a direct cooperative codelet or
/// a distribution + combiner pair.
struct BlockStructure {
  bool Distributes = false;
  DistPattern Dist = DistPattern::Tiled;
  CoopKind Coop = CoopKind::Tree;
};

std::vector<CoopKind> coopSet(const FeatureSet &F, bool AsCombiner) {
  std::vector<CoopKind> Set = {CoopKind::Tree};
  if (AsCombiner)
    Set.push_back(CoopKind::SerialThread0);
  if (F.SharedAtomics) {
    Set.push_back(CoopKind::SharedV1);
    Set.push_back(CoopKind::SharedV2);
  }
  if (F.WarpShuffle) {
    Set.push_back(CoopKind::TreeShuffle);
    if (F.SharedAtomics)
      Set.push_back(CoopKind::SharedV2Shuffle);
  }
  return Set;
}

std::vector<BlockStructure> blockStructures(const FeatureSet &F) {
  std::vector<BlockStructure> Result;
  for (CoopKind C : coopSet(F, /*AsCombiner=*/false))
    Result.push_back({false, DistPattern::Tiled, C});
  for (DistPattern D : {DistPattern::Tiled, DistPattern::Strided})
    for (CoopKind C : coopSet(F, /*AsCombiner=*/true))
      Result.push_back({true, D, C});
  return Result;
}

} // namespace

SearchSpace
tangram::synth::enumerateVariants(const FeatureSet &Features) {
  SearchSpace Space;

  std::vector<GridCombine> GridSchemes = {GridCombine::SecondKernel};
  if (Features.GlobalAtomics)
    GridSchemes.push_back(GridCombine::GlobalAtomic);

  for (GridCombine Scheme : GridSchemes)
    for (DistPattern GridDist : {DistPattern::Tiled, DistPattern::Strided})
      for (const BlockStructure &B : blockStructures(Features)) {
        VariantDescriptor V;
        V.GridDist = GridDist;
        V.GridScheme = Scheme;
        V.BlockDistributes = B.Distributes;
        V.BlockDist = B.Dist;
        V.Coop = B.Coop;
        Space.All.push_back(V);
      }

  // Section IV-B pruning: versions that need a second kernel launch for
  // the per-block partial sums consistently underperform, as do the
  // serial thread-0 combiners; what survives combines per-block partials
  // with atomic instructions on global memory.
  for (const VariantDescriptor &V : Space.All) {
    if (V.usesSecondKernel())
      continue;
    if (V.Coop == CoopKind::SerialThread0)
      continue;
    Space.Pruned.push_back(V);
  }
  return Space;
}

const VariantDescriptor *
tangram::synth::findByFigure6Label(const SearchSpace &Space,
                                   const std::string &Label) {
  for (const VariantDescriptor &V : Space.Pruned)
    if (V.getFigure6Label() == Label)
      return &V;
  return nullptr;
}
