//===- VariantEnumerator.h - Search-space enumeration -----------*- C++ -*-===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Enumerates the parallel-reduction code versions (Section IV-B) from a
/// composition algebra over the available codelets:
///
///   grid     ∈ {tiled, strided} × {second-kernel, global-atomic}
///   block    ∈ {direct coop C} ∪ {dist d ∈ {tiled,strided} · serial-thread
///                                 partials combined by C or thread-0 code}
///   coops    grow with each feature stage:
///     original        : direct {Tree};            combines {Tree, S0}
///     + shared atomics: direct {+VA1, +VA2};      combines {+VA1, +VA2}
///     + warp shuffle  : direct {+Vs, +VA2s};      combines {+Vs, +VA2s}
///
/// Versions needing a second kernel for per-block partials are pruned, as
/// are the serial-thread-0 combiners (both "consistently provide low
/// performance", Section IV-B), leaving 30 versions — all combining
/// per-block partials with atomic instructions on global memory, exactly
/// as the paper reports. The per-category totals of the full (unpruned)
/// space are reported next to the paper's numbers; the paper's 89 counts
/// second-kernel codelet choices whose exact rule is not specified, so the
/// full-space total differs (ours: 68) while the structural anchors match:
/// 10 original versions, 30 pruned versions, the 16 Fig. 6 compositions,
/// and the 8 best performers.
///
//===----------------------------------------------------------------------===//

#ifndef TANGRAM_SYNTH_VARIANTENUMERATOR_H
#define TANGRAM_SYNTH_VARIANTENUMERATOR_H

#include "synth/Variant.h"

#include <vector>

namespace tangram::synth {

/// Which language/compiler features are enabled for enumeration; each
/// paper contribution unlocks more of the space.
struct FeatureSet {
  bool GlobalAtomics = true; ///< Section III-A.
  bool SharedAtomics = true; ///< Section III-B.
  bool WarpShuffle = true;   ///< Section III-C.

  static FeatureSet original() { return {false, false, false}; }
  static FeatureSet all() { return {true, true, true}; }
};

/// The enumerated search space.
struct SearchSpace {
  std::vector<VariantDescriptor> All;
  std::vector<VariantDescriptor> Pruned; ///< The surviving versions.

  unsigned countCategory(VariantCategory C) const {
    unsigned N = 0;
    for (const VariantDescriptor &V : All)
      if (V.getCategory() == C)
        ++N;
    return N;
  }
};

/// Enumerates all versions expressible with \p Features and applies the
/// Section IV-B pruning.
SearchSpace enumerateVariants(const FeatureSet &Features = FeatureSet::all());

/// Finds the pruned-set version carrying Fig. 6 label \p Label ("a".."p").
/// Returns nullptr when the label is unknown.
const VariantDescriptor *findByFigure6Label(const SearchSpace &Space,
                                            const std::string &Label);

} // namespace tangram::synth

#endif // TANGRAM_SYNTH_VARIANTENUMERATOR_H
