//===- VariantSerializer.cpp - Persistent variant artifacts ----------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "synth/VariantSerializer.h"

#include "ir/Bytecode.h"
#include "ir/KernelIR.h"
#include "native/NativeKernel.h"
#include "support/BinaryStream.h"

#include <cstring>
#include <string>

using namespace tangram;
using namespace tangram::synth;

using support::ByteReader;
using support::ByteWriter;
using support::Expected;
using support::Status;
using support::StatusCode;

namespace {

//===----------------------------------------------------------------------===//
// Byte-level primitives (explicit little-endian)
//===----------------------------------------------------------------------===//

constexpr unsigned char Magic[4] = {'T', 'G', 'R', 'V'};
constexpr size_t HeaderSize = 56;
/// Defends the recursive extent-expression reader against crafted input;
/// real extents are two or three nodes deep.
constexpr unsigned MaxExprDepth = 64;
/// Second-stage chains are at most one deep today; the cap only bounds
/// what a corrupted length field can make the reader attempt.
constexpr unsigned MaxStageDepth = 8;

//===----------------------------------------------------------------------===//
// Extent expressions (the evalUniformExpr subset)
//===----------------------------------------------------------------------===//

enum class ExprTag : unsigned char { IntConst, ParamRef, Special, Binary };

/// Writes \p E as a prefix tree. Only the launch-uniform subset the
/// simulator's evalUniformExpr replays is serializable; anything else
/// (and anything the uniform evaluator would reject, like thread-indexed
/// specials) fails so the variant stays memory-only.
bool writeExtentExpr(ByteWriter &W, const ir::Expr *E) {
  switch (E->getKind()) {
  case ir::Expr::Kind::IntConst: {
    const auto *C = cast<ir::IntConstExpr>(E);
    W.u8(static_cast<unsigned char>(ExprTag::IntConst));
    W.u8(static_cast<unsigned char>(C->getType()));
    W.i64(C->getValue());
    return true;
  }
  case ir::Expr::Kind::ParamRef: {
    const auto *R = cast<ir::ParamRefExpr>(E);
    W.u8(static_cast<unsigned char>(ExprTag::ParamRef));
    W.u32(R->getParam()->Index);
    return true;
  }
  case ir::Expr::Kind::Special: {
    const auto *S = cast<ir::SpecialExpr>(E);
    ir::SpecialReg Reg = S->getReg();
    if (Reg != ir::SpecialReg::BlockDimX && Reg != ir::SpecialReg::GridDimX &&
        Reg != ir::SpecialReg::WarpSize)
      return false;
    W.u8(static_cast<unsigned char>(ExprTag::Special));
    W.u8(static_cast<unsigned char>(Reg));
    return true;
  }
  case ir::Expr::Kind::Binary: {
    const auto *B = cast<ir::BinaryOpExpr>(E);
    if (B->getOp() > ir::BinOp::Max)
      return false; // Comparisons/logic never extend a shared array.
    W.u8(static_cast<unsigned char>(ExprTag::Binary));
    W.u8(static_cast<unsigned char>(B->getOp()));
    W.u8(static_cast<unsigned char>(B->getType()));
    return writeExtentExpr(W, B->getLHS()) && writeExtentExpr(W, B->getRHS());
  }
  default:
    return false;
  }
}

/// Rebuilds an extent tree into \p M's arena, resolving ParamRefs against
/// \p K's (already rebuilt) parameter list. Null means malformed input.
ir::Expr *readExtentExpr(ByteReader &R, ir::Module &M, const ir::Kernel &K,
                         unsigned Depth) {
  if (Depth > MaxExprDepth)
    return nullptr;
  switch (static_cast<ExprTag>(R.u8())) {
  case ExprTag::IntConst: {
    unsigned char Ty = R.u8();
    long long V = R.i64();
    if (R.failed() || Ty > static_cast<unsigned char>(ir::ScalarType::F64))
      return nullptr;
    return M.constI(V, static_cast<ir::ScalarType>(Ty));
  }
  case ExprTag::ParamRef: {
    uint32_t Index = R.u32();
    if (R.failed() || Index >= K.getParams().size())
      return nullptr;
    return M.ref(K.getParams()[Index].get());
  }
  case ExprTag::Special: {
    unsigned char Reg = R.u8();
    if (R.failed() ||
        (Reg != static_cast<unsigned char>(ir::SpecialReg::BlockDimX) &&
         Reg != static_cast<unsigned char>(ir::SpecialReg::GridDimX) &&
         Reg != static_cast<unsigned char>(ir::SpecialReg::WarpSize)))
      return nullptr;
    return M.special(static_cast<ir::SpecialReg>(Reg));
  }
  case ExprTag::Binary: {
    unsigned char Op = R.u8();
    unsigned char Ty = R.u8();
    if (R.failed() || Op > static_cast<unsigned char>(ir::BinOp::Max) ||
        Ty > static_cast<unsigned char>(ir::ScalarType::F64))
      return nullptr;
    ir::Expr *L = readExtentExpr(R, M, K, Depth + 1);
    if (!L)
      return nullptr;
    ir::Expr *Rhs = readExtentExpr(R, M, K, Depth + 1);
    if (!Rhs)
      return nullptr;
    return M.binary(static_cast<ir::BinOp>(Op), L, Rhs,
                    static_cast<ir::ScalarType>(Ty));
  }
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Variant records
//===----------------------------------------------------------------------===//

/// One stage of the variant chain (the top-level variant or a second-stage
/// kernel), recursively.
Status writeStage(ByteWriter &W, const SynthesizedVariant &V,
                  unsigned Depth) {
  if (Depth > MaxStageDepth)
    return Status(StatusCode::SynthesisError,
                  "variant second-stage chain too deep to serialize");
  const ir::CompiledKernel &CK = V.Compiled;
  if (!CK.Source)
    return Status(StatusCode::SynthesisError,
                  "variant has no source kernel; cannot serialize its "
                  "launch signature");

  // Descriptor (structure + tunables) and the reduction axis.
  W.u8(static_cast<unsigned char>(V.Desc.GridDist));
  W.u8(static_cast<unsigned char>(V.Desc.GridScheme));
  W.u8(V.Desc.BlockDistributes ? 1 : 0);
  W.u8(static_cast<unsigned char>(V.Desc.BlockDist));
  W.u8(static_cast<unsigned char>(V.Desc.Coop));
  W.u32(V.Desc.BlockSize);
  W.u32(V.Desc.Coarsen);
  W.u8(static_cast<unsigned char>(V.Op));
  W.u8(static_cast<unsigned char>(V.Elem));
  W.f64(V.CompileSeconds);

  // Kernel signature skeleton: everything the launchers consult through
  // CompiledKernel::Source. Parameter order encodes Param::Index; the
  // local *count* alone feeds getRegisterEstimate, keeping the occupancy
  // model's verdict identical to the freshly compiled kernel's.
  const ir::Kernel &K = *CK.Source;
  W.str(CK.Name);
  W.u32(CK.NumRegisters);
  W.u32(static_cast<uint32_t>(K.getParams().size()));
  for (const auto &P : K.getParams()) {
    W.str(P->Name);
    W.u8(static_cast<unsigned char>(P->Elem));
    W.u8(P->IsPointer ? 1 : 0);
  }
  W.u32(static_cast<uint32_t>(K.getLocals().size()));
  W.u32(static_cast<uint32_t>(CK.SharedArrays.size()));
  for (const ir::SharedArray *A : CK.SharedArrays) {
    W.str(A->Name);
    W.u8(static_cast<unsigned char>(A->Elem));
    W.u8(A->IsDynamic ? 1 : 0);
    W.u8(A->Extent ? 1 : 0);
    if (A->Extent && !writeExtentExpr(W, A->Extent))
      return Status(StatusCode::SynthesisError,
                    "shared-array extent of '" + A->Name +
                        "' is outside the serializable launch-uniform "
                        "expression subset");
  }
  W.u32(static_cast<uint32_t>(CK.ScalarParamRegs.size()));
  for (const auto &[P, Reg] : CK.ScalarParamRegs) {
    W.u32(P->Index);
    W.u16(Reg);
  }

  // The bytecode itself, field by field, plus the source-loc table.
  W.u32(static_cast<uint32_t>(CK.Code.size()));
  for (const ir::Instr &In : CK.Code) {
    W.u8(static_cast<unsigned char>(In.Op));
    W.u8(static_cast<unsigned char>(In.Ty));
    W.u16(In.Dst);
    W.u16(In.Src1);
    W.u16(In.Src2);
    W.u16(In.MemId);
    W.u32(In.Target);
    W.u8(In.Aux);
    W.u8(In.Aux2);
    W.i64(In.ImmI);
    W.f64(In.ImmF);
  }
  W.u32(static_cast<uint32_t>(CK.InstrLocs.size()));
  for (SourceLoc L : CK.InstrLocs)
    W.u32(L.getOffset());

  // Content-hash echo: the reader recomputes ir::stableHash over its
  // reconstruction and compares, proving the round trip bit-identical
  // (not merely checksum-clean).
  W.u64(ir::stableHash(CK));

  // Native register-plane lowering, when the variant was resolved for the
  // native backend. Code pointer is rebound on read.
  if (V.Native) {
    W.u8(1);
    const native::NativeKernel &NK = *V.Native;
    W.u32(static_cast<uint32_t>(NK.OperandPlane.size()));
    for (native::ValuePlane P : NK.OperandPlane)
      W.u8(static_cast<unsigned char>(P));
    W.u8(NK.PairMode ? 1 : 0);
    W.u8(NK.UsesInt ? 1 : 0);
    W.u8(NK.UsesF32 ? 1 : 0);
    W.u8(NK.UsesF64 ? 1 : 0);
  } else {
    W.u8(0);
  }

  if (V.SecondStage) {
    W.u8(1);
    return writeStage(W, *V.SecondStage, Depth + 1);
  }
  W.u8(0);
  return Status::success();
}

/// Reads one stage record. Returns null on any malformed content (the
/// caller maps that to ArtifactFailure::Corrupt).
std::unique_ptr<SynthesizedVariant> readStage(ByteReader &R, unsigned Depth) {
  if (Depth > MaxStageDepth)
    return nullptr;
  auto V = std::make_unique<SynthesizedVariant>();

  unsigned char GridDist = R.u8();
  unsigned char GridScheme = R.u8();
  unsigned char BlockDistributes = R.u8();
  unsigned char BlockDist = R.u8();
  unsigned char Coop = R.u8();
  uint32_t BlockSize = R.u32();
  uint32_t Coarsen = R.u32();
  unsigned char Op = R.u8();
  unsigned char Elem = R.u8();
  double CompileSeconds = R.f64();
  if (R.failed() ||
      GridDist > static_cast<unsigned char>(transforms::DistPattern::Strided) ||
      GridScheme > static_cast<unsigned char>(GridCombine::GlobalAtomic) ||
      BlockDistributes > 1 ||
      BlockDist > static_cast<unsigned char>(transforms::DistPattern::Strided) ||
      Coop > static_cast<unsigned char>(CoopKind::SerialThread0) ||
      Op > static_cast<unsigned char>(ReduceOp::Any) ||
      Elem > static_cast<unsigned char>(ir::ScalarType::F64))
    return nullptr;
  V->Desc.GridDist = static_cast<transforms::DistPattern>(GridDist);
  V->Desc.GridScheme = static_cast<GridCombine>(GridScheme);
  V->Desc.BlockDistributes = BlockDistributes != 0;
  V->Desc.BlockDist = static_cast<transforms::DistPattern>(BlockDist);
  V->Desc.Coop = static_cast<CoopKind>(Coop);
  V->Desc.BlockSize = BlockSize;
  V->Desc.Coarsen = Coarsen;
  V->Op = static_cast<ReduceOp>(Op);
  V->Elem = static_cast<ir::ScalarType>(Elem);
  V->CompileSeconds = CompileSeconds;

  // Rebuild the kernel skeleton into a fresh module the variant owns.
  V->M = std::make_unique<ir::Module>();
  std::string Name = R.str();
  uint32_t NumRegisters = R.u32();
  uint32_t ParamCount = R.u32();
  if (R.failed() || ParamCount > (1u << 16))
    return nullptr;
  ir::Kernel *K = V->M->addKernel(Name);
  for (uint32_t I = 0; I != ParamCount; ++I) {
    std::string PName = R.str();
    unsigned char PElem = R.u8();
    unsigned char IsPointer = R.u8();
    if (R.failed() || PElem > static_cast<unsigned char>(ir::ScalarType::F64))
      return nullptr;
    if (IsPointer)
      K->addPointerParam(std::move(PName), static_cast<ir::ScalarType>(PElem));
    else
      K->addScalarParam(std::move(PName), static_cast<ir::ScalarType>(PElem));
  }
  uint32_t LocalCount = R.u32();
  if (R.failed() || LocalCount > (1u << 20))
    return nullptr;
  for (uint32_t I = 0; I != LocalCount; ++I)
    K->addLocal("reg" + std::to_string(I), ir::ScalarType::I32);

  ir::CompiledKernel &CK = V->Compiled;
  CK.Name = Name;
  CK.Source = K;
  CK.NumRegisters = NumRegisters;

  uint32_t SharedCount = R.u32();
  if (R.failed() || SharedCount > (1u << 16))
    return nullptr;
  for (uint32_t I = 0; I != SharedCount; ++I) {
    std::string AName = R.str();
    unsigned char AElem = R.u8();
    unsigned char IsDynamic = R.u8();
    unsigned char HasExtent = R.u8();
    if (R.failed() || AElem > static_cast<unsigned char>(ir::ScalarType::F64))
      return nullptr;
    ir::Expr *Extent = nullptr;
    if (HasExtent) {
      Extent = readExtentExpr(R, *V->M, *K, 0);
      if (!Extent)
        return nullptr;
    }
    CK.SharedArrays.push_back(
        K->addSharedArray(std::move(AName), static_cast<ir::ScalarType>(AElem),
                          Extent, IsDynamic != 0));
  }

  uint32_t ScalarRegCount = R.u32();
  if (R.failed() || ScalarRegCount > ParamCount)
    return nullptr;
  for (uint32_t I = 0; I != ScalarRegCount; ++I) {
    uint32_t Index = R.u32();
    uint16_t Reg = R.u16();
    if (R.failed() || Index >= K->getParams().size())
      return nullptr;
    CK.ScalarParamRegs.emplace_back(K->getParams()[Index].get(), Reg);
  }

  uint32_t CodeCount = R.u32();
  if (R.failed() || CodeCount > (1u << 24))
    return nullptr;
  CK.Code.reserve(CodeCount);
  for (uint32_t I = 0; I != CodeCount; ++I) {
    ir::Instr In;
    unsigned char Op8 = R.u8();
    unsigned char Ty8 = R.u8();
    In.Dst = R.u16();
    In.Src1 = R.u16();
    In.Src2 = R.u16();
    In.MemId = R.u16();
    In.Target = R.u32();
    In.Aux = R.u8();
    In.Aux2 = R.u8();
    In.ImmI = R.i64();
    In.ImmF = R.f64();
    if (R.failed() || Op8 > static_cast<unsigned char>(ir::Opcode::Exit) ||
        Ty8 > static_cast<unsigned char>(ir::ScalarType::F64))
      return nullptr;
    In.Op = static_cast<ir::Opcode>(Op8);
    In.Ty = static_cast<ir::ScalarType>(Ty8);
    CK.Code.push_back(In);
  }

  uint32_t LocCount = R.u32();
  if (R.failed() || LocCount > CodeCount)
    return nullptr;
  CK.InstrLocs.reserve(LocCount);
  for (uint32_t I = 0; I != LocCount; ++I)
    CK.InstrLocs.push_back(SourceLoc(R.u32()));

  // The round-trip proof: the reconstruction must hash identically to the
  // kernel that was serialized.
  uint64_t HashEcho = R.u64();
  if (R.failed() || ir::stableHash(CK) != HashEcho)
    return nullptr;

  unsigned char HasNative = R.u8();
  if (R.failed() || HasNative > 1)
    return nullptr;
  if (HasNative) {
    native::NativeKernel NK;
    NK.Code = &CK;
    uint32_t PlaneCount = R.u32();
    if (R.failed() || PlaneCount != CodeCount)
      return nullptr;
    NK.OperandPlane.reserve(PlaneCount);
    for (uint32_t I = 0; I != PlaneCount; ++I) {
      unsigned char P = R.u8();
      if (P > static_cast<unsigned char>(native::ValuePlane::F64))
        return nullptr;
      NK.OperandPlane.push_back(static_cast<native::ValuePlane>(P));
    }
    NK.PairMode = R.u8() != 0;
    NK.UsesInt = R.u8() != 0;
    NK.UsesF32 = R.u8() != 0;
    NK.UsesF64 = R.u8() != 0;
    if (R.failed())
      return nullptr;
    V->Native = std::make_shared<const native::NativeKernel>(std::move(NK));
  }

  unsigned char HasSecond = R.u8();
  if (R.failed() || HasSecond > 1)
    return nullptr;
  if (HasSecond) {
    V->SecondStage = readStage(R, Depth + 1);
    if (!V->SecondStage)
      return nullptr;
  }
  return V;
}

} // namespace

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

Expected<std::vector<unsigned char>>
tangram::synth::serializeVariant(const SynthesizedVariant &V,
                                 const ArtifactKey &Key) {
  ByteWriter Payload;
  Status S = writeStage(Payload, V, 0);
  if (!S.ok())
    return S;

  ByteWriter Out;
  Out.Bytes.reserve(HeaderSize + Payload.Bytes.size());
  for (unsigned char C : Magic)
    Out.u8(C);
  Out.u32(VariantArtifactVersion);
  Out.u64(Key.SourceHash);
  Out.u64(Key.DescHash);
  Out.u8(Key.Gen);
  Out.u8(Key.Op);
  Out.u8(Key.Elem);
  Out.u8(Key.Flags);
  Out.u8(Key.BackendKind);
  Out.u8(0);
  Out.u8(0);
  Out.u8(0); // Pad to an 8-byte boundary; reserved, must be zero.
  Out.u64(Payload.Bytes.size());
  Out.u64(support::binaryChecksum(Payload.Bytes.data(), Payload.Bytes.size()));
  // The header checksum covers everything before it, so a bit flip in the
  // key echo or size field is caught before any of them is trusted.
  Out.u64(support::binaryChecksum(Out.Bytes.data(), Out.Bytes.size()));
  Out.Bytes.insert(Out.Bytes.end(), Payload.Bytes.begin(),
                   Payload.Bytes.end());
  return std::move(Out.Bytes);
}

Expected<std::unique_ptr<SynthesizedVariant>>
tangram::synth::deserializeVariant(const unsigned char *Data, size_t Size,
                                   const ArtifactKey &Expect,
                                   ArtifactFailure &Failure) {
  Failure = ArtifactFailure::Corrupt;
  if (Size < HeaderSize)
    return Status(StatusCode::InvalidArgument,
                  "variant artifact truncated before the header");
  if (std::memcmp(Data, Magic, sizeof(Magic)) != 0)
    return Status(StatusCode::InvalidArgument,
                  "variant artifact has no TGRV magic");
  ByteReader H(Data, HeaderSize);
  for (unsigned I = 0; I != 4; ++I)
    H.u8(); // Magic, already checked.
  uint32_t Version = H.u32();
  ArtifactKey Stored;
  Stored.SourceHash = H.u64();
  Stored.DescHash = H.u64();
  Stored.Gen = H.u8();
  Stored.Op = H.u8();
  Stored.Elem = H.u8();
  Stored.Flags = H.u8();
  Stored.BackendKind = H.u8();
  H.u8();
  H.u8();
  H.u8(); // Reserved pad.
  uint64_t PayloadSize = H.u64();
  uint64_t PayloadChecksum = H.u64();
  uint64_t HeaderChecksum = H.u64();
  if (support::binaryChecksum(Data, HeaderSize - 8) != HeaderChecksum)
    return Status(StatusCode::InvalidArgument,
                  "variant artifact header checksum mismatch");
  if (Version != VariantArtifactVersion)
    return Status(StatusCode::InvalidArgument,
                  "variant artifact format version " + std::to_string(Version) +
                      " is not the supported version " +
                      std::to_string(VariantArtifactVersion));
  if (PayloadSize != Size - HeaderSize)
    return Status(StatusCode::InvalidArgument,
                  "variant artifact payload size disagrees with the file");
  if (support::binaryChecksum(Data + HeaderSize, PayloadSize) != PayloadChecksum)
    return Status(StatusCode::InvalidArgument,
                  "variant artifact payload checksum mismatch");

  // Header proven intact: a key disagreement is now the content-addressing
  // contract being violated, not bit rot.
  if (!(Stored == Expect)) {
    Failure = ArtifactFailure::KeyMismatch;
    return Status(StatusCode::InternalError,
                  "variant artifact carries a different identity than the "
                  "key it was addressed by (content-addressing integrity "
                  "failure)");
  }

  ByteReader R(Data + HeaderSize, PayloadSize);
  std::unique_ptr<SynthesizedVariant> V = readStage(R, 0);
  if (!V || R.failed() || !R.atEnd())
    return Status(StatusCode::InvalidArgument,
                  "variant artifact payload is malformed");
  Failure = ArtifactFailure::None;
  return V;
}
