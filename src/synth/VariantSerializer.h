//===- VariantSerializer.h - Persistent variant artifacts -------*- C++ -*-===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Versioned, endian-stable binary serialization of SynthesizedVariant
/// artifacts, the payload format of the persistent DiskCache and of tuned
/// variant packs. An artifact is self-contained: it carries the compiled
/// bytecode, the kernel-signature skeleton the launchers bind against
/// (parameters, shared arrays with their launch-uniform extent expressions,
/// scalar-parameter registers, the local count feeding the register
/// estimate), the instruction source-loc table, the native backend's
/// register-plane lowering when present, and the second-stage kernel —
/// recursively in the same format.
///
/// Every artifact opens with a fixed header: magic, format version, the
/// full cache-key echo (so a reader can prove the artifact is the variant
/// it asked for), payload size, and splitmix64-finalized checksums of the
/// payload and of the header itself. Readers classify failures:
///
///   - truncation, bad magic, version skew, checksum mismatch, or any
///     malformed payload is *corruption* — callers treat it as a cache
///     miss (and drop the file), never as an error;
///   - a structurally valid artifact whose embedded key differs from the
///     key the caller addressed it by is an *integrity failure* — the
///     content-addressing contract was violated and the caller must not
///     silently recompile over it.
///
/// Byte order is explicit little-endian everywhere, so artifacts written
/// on any host read back on any other.
///
//===----------------------------------------------------------------------===//

#ifndef TANGRAM_SYNTH_VARIANTSERIALIZER_H
#define TANGRAM_SYNTH_VARIANTSERIALIZER_H

#include "support/Expected.h"
#include "synth/KernelSynthesizer.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace tangram::synth {

/// Bump on any change to the header or payload layout. Readers reject
/// other versions as stale (a miss), so a format change silently cold-
/// starts old cache directories instead of misreading them.
inline constexpr uint32_t VariantArtifactVersion = 1;

/// The full variant identity echoed into every artifact header — field for
/// field the engine's VariantKey, spelled in raw bytes so the serializer
/// does not depend on the engine layer. engine::DiskCache converts.
struct ArtifactKey {
  uint64_t SourceHash = 0;
  uint64_t DescHash = 0;
  unsigned char Gen = 0;
  unsigned char Op = 0;
  unsigned char Elem = 0;
  unsigned char Flags = 0;
  unsigned char BackendKind = 0;

  bool operator==(const ArtifactKey &O) const = default;
};

/// Why deserializeVariant failed, for callers that must tell "treat as
/// miss" from "refuse to proceed".
enum class ArtifactFailure {
  None,        ///< Success.
  Corrupt,     ///< Truncated / checksum / version / malformed — a miss.
  KeyMismatch, ///< Valid artifact, wrong identity — hard integrity failure.
};

/// Serializes \p V under identity \p Key. Fails with
/// StatusCode::SynthesisError when the variant is outside the serializable
/// subset (a shared-array extent expression the launch-uniform evaluator
/// could not replay); such variants simply stay memory-only.
support::Expected<std::vector<unsigned char>>
serializeVariant(const SynthesizedVariant &V, const ArtifactKey &Key);

/// Reconstructs a variant from \p Size bytes at \p Data, validating the
/// header against \p Expect. On failure \p Failure says whether the bytes
/// were corrupt (miss semantics) or a key mismatch (integrity failure);
/// the Status carries the detail either way. The reconstructed variant
/// owns a minimal ir::Module rebuilt from the signature skeleton, so the
/// launch paths of both backends (argument binding, shared-extent
/// evaluation, the occupancy model's register estimate) behave exactly as
/// they do for a freshly synthesized variant.
support::Expected<std::unique_ptr<SynthesizedVariant>>
deserializeVariant(const unsigned char *Data, size_t Size,
                   const ArtifactKey &Expect, ArtifactFailure &Failure);

} // namespace tangram::synth

#endif // TANGRAM_SYNTH_VARIANTSERIALIZER_H
