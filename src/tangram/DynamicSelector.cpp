//===- DynamicSelector.cpp - Runtime kernel selection ------------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "tangram/DynamicSelector.h"

#include "baselines/OmpCpuReduce.h"
#include "reduce/OpDef.h"

#include <cmath>
#include <limits>

using namespace tangram;
using namespace tangram::synth;

using support::Expected;
using support::Status;
using support::StatusCode;

DynamicSelector::DynamicSelector(const TangramReduction &TR,
                                 std::vector<VariantDescriptor> Portfolio)
    : TR(TR), Portfolio(std::move(Portfolio)) {
  if (this->Portfolio.empty()) {
    // Default portfolio: the paper's eight best versions.
    for (const VariantDescriptor &V : TR.getSearchSpace().Pruned)
      if (V.isPaperBest())
        this->Portfolio.push_back(V);
  }
  // Candidates are synthesized lazily through the engine's variant cache on
  // first use, so constructing a selector is free and the compiled versions
  // are shared with every other consumer of the facade's cache.
}

unsigned DynamicSelector::bucketOf(size_t N) {
  // Powers-of-four buckets: 0: <256, 1: <1K, 2: <4K, ...
  unsigned Bucket = 0;
  size_t Limit = 256;
  while (N >= Limit && Bucket < 16) {
    Limit *= 4;
    ++Bucket;
  }
  return Bucket;
}

int DynamicSelector::pickCandidate(BucketState &State,
                                   engine::ExecutionEngine &E) const {
  auto Alive = [&](unsigned C) {
    return !State.Dead[C] && !E.isQuarantined(Portfolio[C]);
  };
  // Exploration: the next untried candidate still worth trying.
  while (State.NextToTry < Portfolio.size()) {
    unsigned C = State.NextToTry++;
    if (Alive(C))
      return static_cast<int>(C);
  }
  // Exploitation: the best known candidate, if it still lives.
  if (State.BestIndex >= 0 && Alive(static_cast<unsigned>(State.BestIndex)))
    return State.BestIndex;
  // The best died (or was quarantined since): fastest surviving candidate,
  // falling back to any alive one (untried entries carry infinity).
  int Pick = -1;
  for (unsigned C = 0; C != Portfolio.size(); ++C)
    if (Alive(C) &&
        (Pick < 0 ||
         State.Seconds[C] < State.Seconds[static_cast<unsigned>(Pick)]))
      Pick = static_cast<int>(C);
  return Pick;
}

Expected<engine::RunResult>
DynamicSelector::reduce(engine::ExecutionEngine &E, sim::BufferId In,
                        size_t N, sim::ExecMode Mode) {
  engine::ReduceRequest Req;
  Req.In = In;
  Req.N = N;
  Req.Mode = Mode;
  auto Out = reduce(E, Req);
  if (!Out)
    return Out.status();
  return engine::RunResult(std::move(*Out));
}

Expected<engine::ReduceResult>
DynamicSelector::reduce(engine::ExecutionEngine &E,
                        const engine::ReduceRequest &Req) {
  Key K{E.getArch().Gen, bucketOf(Req.N)};
  BucketState &State = Buckets[K];
  if (State.Seconds.empty()) {
    State.Seconds.assign(Portfolio.size(),
                         std::numeric_limits<double>::infinity());
    State.Dead.assign(Portfolio.size(), 0);
  }

  for (;;) {
    int Pick = pickCandidate(State, E);
    if (Pick < 0)
      break;
    unsigned Candidate = static_cast<unsigned>(Pick);
    engine::ReduceRequest Cand = Req;
    Cand.Desc = Portfolio[Candidate];
    auto Out = E.run(Cand);
    if (Out) {
      if (Out->Seconds < State.Seconds[Candidate])
        State.Seconds[Candidate] = Out->Seconds;
      if (State.BestIndex < 0 ||
          State.Seconds[Candidate] <
              State.Seconds[static_cast<unsigned>(State.BestIndex)])
        State.BestIndex = static_cast<int>(Candidate);
      return Out;
    }
    // The candidate trapped (launch error, watchdog deadline, quarantine):
    // mark it dead for this bucket and try the next one. The caller still
    // gets an answer as long as anything in the chain can produce one.
    State.Dead[Candidate] = 1;
    if (State.BestIndex == Pick) {
      State.BestIndex = -1;
      for (unsigned C = 0; C != Portfolio.size(); ++C)
        if (!State.Dead[C] && std::isfinite(State.Seconds[C]) &&
            (State.BestIndex < 0 ||
             State.Seconds[C] <
                 State.Seconds[static_cast<unsigned>(State.BestIndex)]))
          State.BestIndex = static_cast<int>(C);
    }
  }

  // Every GPU candidate is dead or quarantined on the simulator path: the
  // synthesized kernels may still be fine — try them on the native CPU
  // backend before giving up on them entirely.
  auto Native = nativeFallback(E, Req);
  if (Native) {
    ++NativeFallbackRuns;
    return Native;
  }

  // Last resort: a plain host loop always produces the caller's answer.
  auto Host = hostFallback(E, Req.In, Req.N);
  if (Host)
    ++FallbackRuns;
  return Host;
}

Expected<engine::ReduceResult>
DynamicSelector::nativeFallback(engine::ExecutionEngine &E,
                                const engine::ReduceRequest &Req) {
  // Race checking is a simulator instrument; nothing to serve natively.
  if (Req.Mode == sim::ExecMode::RaceCheck)
    return Status(StatusCode::InvalidArgument,
                  "native fallback cannot run RaceCheck mode");
  Status LastWhy(StatusCode::InternalError, "empty portfolio");
  for (const VariantDescriptor &Desc : Portfolio) {
    engine::ReduceRequest Cand = Req;
    Cand.Desc = Desc;
    Cand.Mode = sim::ExecMode::Functional;
    Cand.BackendKind = engine::Backend::NativeCpu;
    auto Out = E.run(Cand);
    if (Out)
      return Out;
    LastWhy = Out.status();
  }
  return LastWhy;
}

Expected<engine::ReduceResult>
DynamicSelector::hostFallback(engine::ExecutionEngine &E, sim::BufferId In,
                              size_t N) {
  sim::Device &Dev = E.getDevice();
  if (In >= Dev.mark())
    return Status(StatusCode::InvalidArgument,
                  "host fallback: invalid input buffer id");
  if (N > Dev.get(In).size())
    return Status(StatusCode::InvalidArgument,
                  "host fallback: N exceeds the input buffer length");

  // Honor the facade's operator and element domain exactly — the baseline's
  // parallel path only knows float Add, and correctness beats speed here.
  const TangramReduction::Options &Opts = TR.getOptions();
  reduce::HostAccumulator Acc(Opts.Op, Opts.Elem);
  for (size_t I = 0; I != N; ++I)
    Acc.accumulate(Dev.readFloat(In, I), Dev.readInt(In, I),
                   static_cast<long long>(I));
  engine::ReduceResult Out;
  Out.FloatValue = Acc.valueF();
  Out.IntValue = Acc.valueI();
  Out.IndexValue = Acc.index();
  // Priced like the OmpCpuReduce baseline (POWER8 host model). The host
  // loop runs on the CPU tier, so report it as the native backend.
  Out.Seconds = baselines::Power8Model{}.seconds(N);
  Out.Used = engine::Backend::NativeCpu;
  return Out;
}

unsigned DynamicSelector::getDeadCandidates() const {
  unsigned Count = 0;
  for (const auto &Entry : Buckets)
    for (char D : Entry.second.Dead)
      Count += D ? 1u : 0u;
  return Count;
}

const VariantDescriptor *
DynamicSelector::getBest(const sim::ArchDesc &Arch, size_t N) const {
  auto It = Buckets.find(Key{Arch.Gen, bucketOf(N)});
  if (It == Buckets.end() || It->second.BestIndex < 0)
    return nullptr;
  return &Portfolio[static_cast<unsigned>(It->second.BestIndex)];
}

bool DynamicSelector::isConverged(const sim::ArchDesc &Arch,
                                  size_t N) const {
  auto It = Buckets.find(Key{Arch.Gen, bucketOf(N)});
  return It != Buckets.end() &&
         It->second.NextToTry >= Portfolio.size();
}
