//===- DynamicSelector.cpp - Runtime kernel selection ------------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "tangram/DynamicSelector.h"

#include <limits>

using namespace tangram;
using namespace tangram::synth;

DynamicSelector::DynamicSelector(const TangramReduction &TR,
                                 std::vector<VariantDescriptor> Portfolio)
    : TR(TR), Portfolio(std::move(Portfolio)) {
  if (this->Portfolio.empty()) {
    // Default portfolio: the paper's eight best versions.
    for (const VariantDescriptor &V : TR.getSearchSpace().Pruned)
      if (V.isPaperBest())
        this->Portfolio.push_back(V);
  }
  // Candidates are synthesized lazily through the engine's variant cache on
  // first use, so constructing a selector is free and the compiled versions
  // are shared with every other consumer of the facade's cache.
}

unsigned DynamicSelector::bucketOf(size_t N) {
  // Powers-of-four buckets: 0: <256, 1: <1K, 2: <4K, ...
  unsigned Bucket = 0;
  size_t Limit = 256;
  while (N >= Limit && Bucket < 16) {
    Limit *= 4;
    ++Bucket;
  }
  return Bucket;
}

support::Expected<engine::RunResult>
DynamicSelector::reduce(engine::ExecutionEngine &E, sim::BufferId In,
                        size_t N, sim::ExecMode Mode) {
  Key K{E.getArch().Gen, bucketOf(N)};
  BucketState &State = Buckets[K];
  if (State.Seconds.empty())
    State.Seconds.assign(Portfolio.size(),
                         std::numeric_limits<double>::infinity());

  unsigned Candidate;
  if (State.NextToTry < Portfolio.size()) {
    // Exploration: micro-profile the next untried candidate.
    Candidate = State.NextToTry++;
  } else {
    Candidate = static_cast<unsigned>(State.BestIndex);
  }

  auto Out = E.reduce(Portfolio[Candidate], In, N, Mode);
  if (Out) {
    if (Out->Seconds < State.Seconds[Candidate])
      State.Seconds[Candidate] = Out->Seconds;
    if (State.BestIndex < 0 ||
        State.Seconds[Candidate] <
            State.Seconds[static_cast<unsigned>(State.BestIndex)])
      State.BestIndex = static_cast<int>(Candidate);
  }
  return Out;
}

const VariantDescriptor *
DynamicSelector::getBest(const sim::ArchDesc &Arch, size_t N) const {
  auto It = Buckets.find(Key{Arch.Gen, bucketOf(N)});
  if (It == Buckets.end() || It->second.BestIndex < 0)
    return nullptr;
  return &Portfolio[static_cast<unsigned>(It->second.BestIndex)];
}

bool DynamicSelector::isConverged(const sim::ArchDesc &Arch,
                                  size_t N) const {
  auto It = Buckets.find(Key{Arch.Gen, bucketOf(N)});
  return It != Buckets.end() &&
         It->second.NextToTry >= Portfolio.size();
}
