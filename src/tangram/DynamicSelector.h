//===- DynamicSelector.h - Runtime kernel selection --------------*- C++ -*-===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic kernel selection at runtime — the alternative to ahead-of-time
/// tuning the paper points to ("Tangram will only use ... heuristics or
/// dynamic kernel selection at runtime [33]", Section III). In the DySel
/// style, the selector carries a small portfolio of synthesized versions;
/// the first calls for a given (architecture, size-bucket) pair each
/// "micro-profile" one candidate while still producing the caller's
/// result, and later calls exploit the fastest candidate seen.
///
//===----------------------------------------------------------------------===//

#ifndef TANGRAM_TANGRAM_DYNAMICSELECTOR_H
#define TANGRAM_TANGRAM_DYNAMICSELECTOR_H

#include "tangram/Tangram.h"

#include <map>

namespace tangram {

/// Online selector over a portfolio of synthesized reduction versions.
///
/// Resilience: the selector is the last consumer standing when variants
/// misbehave, so reduce() walks a fallback chain instead of propagating
/// the first failure — a candidate that traps (launch error, watchdog
/// deadline) or is quarantined by its engine is marked dead for that
/// (arch, bucket) and the next-best candidate runs instead; when every
/// GPU candidate is dead, the portfolio is retried on the native CPU
/// backend (src/native) — the engine's fault plan and simulator-side
/// failure modes do not reach it, and it still runs the *synthesized*
/// kernel at host speed; only when even native execution cannot answer
/// does a plain host CPU reduction (the OmpCpuReduce baseline path)
/// produce the caller's result.
class DynamicSelector {
public:
  /// \p Portfolio defaults to the paper's eight best versions (Fig. 6
  /// colored set) when empty.
  DynamicSelector(const TangramReduction &TR,
                  std::vector<synth::VariantDescriptor> Portfolio = {});

  /// Serves one reduction request, micro-profiling while candidates remain
  /// untried for (E's arch, bucket). The request's descriptor is *advisory*
  /// here — the selector substitutes its own portfolio candidates — but
  /// its buffer, size, mode, backend, deadline, and routing facts are all
  /// honored. Returns the result of whichever candidate ran, falling back
  /// through the portfolio, then the native CPU backend, then the host
  /// baseline. Candidates resolve through the engine's variant cache, so
  /// each is compiled at most once. A Status only escapes when even the
  /// host fallback cannot run (e.g. an invalid buffer).
  support::Expected<engine::ReduceResult>
  reduce(engine::ExecutionEngine &E, const engine::ReduceRequest &Req);

  /// Deprecated positional spelling of the request-shaped reduce().
  [[deprecated("build a ReduceRequest and call reduce(E, Req)")]]
  support::Expected<engine::RunResult>
  reduce(engine::ExecutionEngine &E, sim::BufferId In, size_t N,
         sim::ExecMode Mode = sim::ExecMode::Functional);

  /// Times the host CPU baseline answered instead of a GPU candidate.
  unsigned getFallbackRuns() const { return FallbackRuns; }
  /// Times the native CPU backend answered after every simulator-side
  /// candidate was dead (one step above the host-loop last resort).
  unsigned getNativeFallbackRuns() const { return NativeFallbackRuns; }
  /// Candidates marked dead (across all buckets) after trapping or being
  /// quarantined.
  unsigned getDeadCandidates() const;

  /// The candidate currently believed best for (arch, N); null until at
  /// least one call completed for the bucket.
  const synth::VariantDescriptor *getBest(const sim::ArchDesc &Arch,
                                          size_t N) const;

  /// True once every candidate has been tried for (arch, N)'s bucket.
  bool isConverged(const sim::ArchDesc &Arch, size_t N) const;

  /// Number of size buckets (powers of four).
  static unsigned bucketOf(size_t N);

private:
  struct BucketState {
    std::vector<double> Seconds; ///< Per-candidate best time (inf = untried).
    std::vector<char> Dead;      ///< Candidates that trapped here.
    unsigned NextToTry = 0;
    int BestIndex = -1;
  };

  /// The next candidate to run for \p State: exploration first, then the
  /// best known, skipping dead and engine-quarantined entries (-1 = none
  /// alive).
  int pickCandidate(BucketState &State, engine::ExecutionEngine &E) const;

  /// Correct-if-slow host CPU reduction over the device buffer, priced by
  /// the OmpCpuReduce POWER8 model.
  support::Expected<engine::ReduceResult>
  hostFallback(engine::ExecutionEngine &E, sim::BufferId In, size_t N);

  /// Retries the portfolio on the native CPU backend (quarantine is a
  /// simulator-path verdict and is deliberately bypassed). Null result =
  /// nothing ran natively either.
  support::Expected<engine::ReduceResult>
  nativeFallback(engine::ExecutionEngine &E, const engine::ReduceRequest &Req);

  struct Key {
    sim::ArchGeneration Gen;
    unsigned Bucket;
    bool operator<(const Key &O) const {
      return Gen != O.Gen ? Gen < O.Gen : Bucket < O.Bucket;
    }
  };

  const TangramReduction &TR;
  std::vector<synth::VariantDescriptor> Portfolio;
  std::map<Key, BucketState> Buckets;
  unsigned FallbackRuns = 0;
  unsigned NativeFallbackRuns = 0;
};

} // namespace tangram

#endif // TANGRAM_TANGRAM_DYNAMICSELECTOR_H
