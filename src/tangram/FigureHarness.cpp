//===- FigureHarness.cpp - Figure/table regeneration harness ----------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "tangram/FigureHarness.h"

#include "support/StringUtils.h"

#include <limits>
#include <sstream>

using namespace tangram;

const std::vector<size_t> &FigureHarness::getPaperSizes() {
  // The x-axis of Figs. 7-10.
  static const std::vector<size_t> Sizes = {
      64,        256,      1024,     4096,      16384,    65536,
      262144,    1048576,  4194304,  16777216,  67108864, 268435456};
  return Sizes;
}

FigureRow FigureHarness::measure(const sim::ArchDesc &Arch, size_t N) {
  FigureRow Row;
  Row.N = N;

  // Tangram: tuned best version over the pruned set, via the hardened
  // sweep so the row records what (if anything) was quarantined.
  auto Best = TR.findBestReport(Arch, N);
  if (Best) {
    Row.TangramSeconds = Best->BestSeconds;
    Row.BestLabel = Best->Fig6Label;
    Row.BestName = Best->Best.getName();
    Row.QuarantinedConfigs = static_cast<unsigned>(Best->Quarantined.size());
  } else {
    // No surviving configuration: the row still measures every baseline and
    // carries the failure class instead of a Tangram time.
    Row.TangramSeconds = std::numeric_limits<double>::infinity();
    Row.Status = support::getStatusCodeName(Best.status().Code);
  }

  // Baselines on a scoped shared virtual input in the arch's engine.
  engine::ExecutionEngine &E = TR.engineFor(Arch);
  size_t Mark = E.deviceMark();
  sim::VirtualPattern Pattern;
  sim::BufferId In =
      E.getDevice().allocVirtual(ir::ScalarType::F32, N, Pattern);
  Row.CubSeconds = Cub.run(E, In, N, sim::ExecMode::Sampled).Seconds;
  Row.KokkosSeconds = Kokkos.run(E, In, N, sim::ExecMode::Sampled).Seconds;
  Row.OmpSeconds = Omp.run(E, In, N, sim::ExecMode::Sampled).Seconds;
  E.deviceRelease(Mark);
  return Row;
}

std::vector<FigureRow> FigureHarness::measureAll(const sim::ArchDesc &Arch) {
  std::vector<FigureRow> Rows;
  for (size_t N : getPaperSizes())
    Rows.push_back(measure(Arch, N));
  return Rows;
}

std::string tangram::formatFigureTable(const std::string &Title,
                                       const std::vector<FigureRow> &Rows) {
  std::ostringstream OS;
  OS << Title << "\n";
  OS << strformat("%-12s %-6s %-16s %10s %10s %10s %10s\n", "N", "best",
                  "version", "tangram_x", "kokkos_x", "openmp_x", "cub_x");
  for (const FigureRow &R : Rows)
    OS << strformat("%-12zu (%s)%*s %-16s %10.2f %10.2f %10.2f %10.2f\n",
                    R.N, R.BestLabel.c_str(),
                    static_cast<int>(3 - R.BestLabel.size()), "",
                    R.BestName.c_str(), R.tangramSpeedup(),
                    R.kokkosSpeedup(), R.ompSpeedup(), 1.0);
  return OS.str();
}
