//===- FigureHarness.h - Figure/table regeneration harness ------*- C++ -*-===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's evaluation series: for each array size of
/// Figs. 7-10 (64 .. 268M 32-bit elements), the best Tangram-synthesized
/// version, CUB, Kokkos, and the OpenMP CPU version are timed and reported
/// as speedups over the CUB baseline — the y-axis of every figure.
///
//===----------------------------------------------------------------------===//

#ifndef TANGRAM_TANGRAM_FIGUREHARNESS_H
#define TANGRAM_TANGRAM_FIGUREHARNESS_H

#include "baselines/CubReduce.h"
#include "baselines/KokkosReduce.h"
#include "baselines/OmpCpuReduce.h"
#include "tangram/Tangram.h"

namespace tangram {

/// One x-axis point of a figure.
struct FigureRow {
  size_t N = 0;
  double TangramSeconds = 0;
  double CubSeconds = 0;
  double KokkosSeconds = 0;
  double OmpSeconds = 0;
  /// Fig. 6 label of the winning Tangram version at this size.
  std::string BestLabel;
  std::string BestName;
  /// Health of the Tangram sweep behind this row: "ok" when a tuned winner
  /// survived, else the failure class of the hardened tuner (for example
  /// "deadline-exceeded" or "wrong-result"). Baseline columns are always
  /// measured; only TangramSeconds is meaningless when not "ok".
  std::string Status = "ok";
  /// Configurations the hardened tuner quarantined while producing this
  /// row (0 on a fully clean sweep).
  unsigned QuarantinedConfigs = 0;

  double tangramSpeedup() const { return CubSeconds / TangramSeconds; }
  double kokkosSpeedup() const { return CubSeconds / KokkosSeconds; }
  double ompSpeedup() const { return CubSeconds / OmpSeconds; }
};

/// Generates figure rows for one architecture.
class FigureHarness {
public:
  explicit FigureHarness(TangramReduction &TR) : TR(TR) {}

  /// The paper's x-axis: 64 to 268435456 elements (Figs. 7-10).
  static const std::vector<size_t> &getPaperSizes();

  /// Measures one size on one architecture (sampled pricing).
  FigureRow measure(const sim::ArchDesc &Arch, size_t N);

  /// Measures every paper size.
  std::vector<FigureRow> measureAll(const sim::ArchDesc &Arch);

private:
  TangramReduction &TR;
  baselines::CubReduce Cub;
  baselines::KokkosReduce Kokkos;
  baselines::OmpCpuReduce Omp{2};
};

/// Renders rows as the aligned text table the bench binaries print.
std::string formatFigureTable(const std::string &Title,
                              const std::vector<FigureRow> &Rows);

} // namespace tangram

#endif // TANGRAM_TANGRAM_FIGUREHARNESS_H
