//===- Tangram.cpp - Public library facade ----------------------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "tangram/Tangram.h"

#include "codegen/CudaEmitter.h"
#include "lang/Parser.h"
#include "sema/Sema.h"
#include "transforms/Pipeline.h"

#include <algorithm>
#include <limits>

using namespace tangram;
using namespace tangram::synth;

using support::Expected;
using support::Status;
using support::StatusCode;

Expected<std::unique_ptr<TangramReduction>>
TangramReduction::create(const Options &Opts) {
  auto TR = std::unique_ptr<TangramReduction>(new TangramReduction());
  TR->Opts = Opts;
  TR->SourceText = Opts.SourceOverride.empty()
                       ? getReductionSource(Opts.Elem, Opts.Op)
                       : Opts.SourceOverride;
  TR->SM = std::make_unique<SourceManager>("reduction.tgr", TR->SourceText);
  TR->Diags = std::make_unique<DiagnosticEngine>(*TR->SM);
  TR->Ctx = std::make_unique<lang::ASTContext>();

  lang::Parser P(*TR->SM, *TR->Ctx, *TR->Diags);
  TR->TU = P.parseTranslationUnit();
  if (TR->Diags->hasErrors())
    return Status(StatusCode::ParseError, TR->Diags->renderAll());
  sema::Sema S(*TR->Ctx, *TR->Diags);
  if (!S.analyze(TR->TU))
    return Status(StatusCode::SemaError, TR->Diags->renderAll());
  TR->Infos = transforms::runTransformPipeline(TR->TU);
  TR->Synth = std::make_unique<KernelSynthesizer>(
      TR->TU, TR->Infos, Opts.Op,
      Opts.Elem == ElemKind::Float ? ir::ScalarType::F32
                                   : ir::ScalarType::I32);
  TR->Space = enumerateVariants();
  TR->Cache = Opts.Engine.Cache
                  ? Opts.Engine.Cache
                  : std::make_shared<engine::VariantCache>(
                        Opts.Engine.CacheCapacity);
  TR->Pool = Opts.Engine.Pool
                 ? Opts.Engine.Pool
                 : std::make_shared<support::ThreadPool>(
                       Opts.Engine.ThreadCount);
  return Expected<std::unique_ptr<TangramReduction>>(std::move(TR));
}

std::unique_ptr<TangramReduction>
TangramReduction::create(const Options &Opts, std::string &Error) {
  auto TR = create(Opts);
  if (!TR) {
    Error = TR.status().Message;
    return nullptr;
  }
  return std::move(*TR);
}

engine::ExecutionEngine &
TangramReduction::engineFor(const sim::ArchDesc &Arch) const {
  auto It = Engines.find(Arch.Gen);
  if (It == Engines.end()) {
    engine::EngineOptions EO = Opts.Engine;
    EO.Cache = Cache;
    EO.Pool = Pool;
    auto E = std::make_unique<engine::ExecutionEngine>(Arch, EO);
    E->attachCompiler(*Synth, SourceText);
    It = Engines.emplace(Arch.Gen, std::move(E)).first;
  }
  return *It->second;
}

Expected<std::unique_ptr<SynthesizedVariant>>
TangramReduction::synthesize(const VariantDescriptor &Desc,
                             const OptimizationFlags &Opts) const {
  return Synth->synthesize(Desc, Opts);
}

std::unique_ptr<SynthesizedVariant>
TangramReduction::synthesize(const VariantDescriptor &Desc,
                             std::string &Error,
                             const OptimizationFlags &Opts) const {
  auto S = Synth->synthesize(Desc, Opts);
  if (!S) {
    Error = S.status().Message;
    return nullptr;
  }
  return std::move(*S);
}

Expected<std::string>
TangramReduction::emitCudaFor(const VariantDescriptor &Desc) const {
  auto S = Synth->synthesize(Desc);
  if (!S)
    return S.status();
  codegen::CudaEmitOptions Options;
  Options.EmitHostWrapper = true;
  return codegen::emitCuda(*(*S)->K, Options);
}

std::string TangramReduction::emitCudaFor(const VariantDescriptor &Desc,
                                          std::string &Error) const {
  auto Cuda = emitCudaFor(Desc);
  if (!Cuda) {
    Error = Cuda.status().Message;
    return "";
  }
  return std::move(*Cuda);
}

Expected<engine::RaceReport>
TangramReduction::raceCheck(const VariantDescriptor &Desc,
                            const sim::ArchDesc &Arch, size_t N) const {
  return engineFor(Arch).raceCheck(Desc, N);
}

std::string TangramReduction::renderRace(const sim::RaceDiagnostic &D) const {
  std::string Body = D.render();
  // Prefer the newer access's source position; scaffolding instructions
  // carry no location, so fall back to the older one.
  SourceLoc Loc = D.Second.Loc.isValid() ? D.Second.Loc : D.First.Loc;
  if (!Loc.isValid() || Loc.getOffset() > SourceText.size())
    return Body;
  LineColumn LC = SM->getLineColumn(Loc);
  return std::string(SM->getBufferName()) + ":" + std::to_string(LC.Line) +
         ":" + std::to_string(LC.Column) + ": " + Body;
}

double TangramReduction::timeVariant(const VariantDescriptor &Desc,
                                     const sim::ArchDesc &Arch,
                                     size_t N) const {
  return engineFor(Arch).timeVariant(Desc, N);
}

VariantDescriptor TangramReduction::tune(const VariantDescriptor &Desc,
                                         const sim::ArchDesc &Arch,
                                         size_t N) const {
  VariantDescriptor Best = Desc;
  double BestTime = std::numeric_limits<double>::infinity();
  for (unsigned Block : Opts.BlockSizes) {
    if (Block > Arch.MaxThreadsPerBlock)
      continue;
    std::vector<unsigned> Coarsens =
        Desc.BlockDistributes ? Opts.CoarsenFactors
                              : std::vector<unsigned>{1};
    for (unsigned C : Coarsens) {
      if (static_cast<size_t>(Block) * C > Opts.MaxElemsPerBlock)
        continue;
      // Skip grossly oversized tiles (a single block would cover the
      // whole input many times over).
      if (static_cast<size_t>(Block) * C > std::max<size_t>(N * 4, 64))
        continue;
      VariantDescriptor Candidate = Desc;
      Candidate.BlockSize = Block;
      Candidate.Coarsen = C;
      double T = timeVariant(Candidate, Arch, N);
      if (T < BestTime) {
        BestTime = T;
        Best = Candidate;
      }
    }
  }
  return Best;
}

TangramReduction::BestResult
TangramReduction::findBest(const sim::ArchDesc &Arch, size_t N) const {
  BestResult Best;
  Best.Seconds = std::numeric_limits<double>::infinity();
  for (const VariantDescriptor &V : Space.Pruned) {
    VariantDescriptor Tuned = tune(V, Arch, N);
    double T = timeVariant(Tuned, Arch, N);
    if (T < Best.Seconds) {
      Best.Seconds = T;
      Best.Desc = Tuned;
      Best.Fig6Label = Tuned.getFigure6Label();
    }
  }
  return Best;
}
