//===- Tangram.cpp - Public library facade ----------------------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "tangram/Tangram.h"

#include "codegen/CudaEmitter.h"
#include "lang/Parser.h"
#include "sema/Sema.h"
#include "transforms/Pipeline.h"

#include <algorithm>
#include <limits>

using namespace tangram;
using namespace tangram::synth;

using support::Expected;
using support::Status;
using support::StatusCode;

/// Maps a declared language element type onto the IR scalar type.
static ir::ScalarType scalarTypeFor(const lang::Type *Ty,
                                    ir::ScalarType Default) {
  if (!Ty)
    return Default;
  switch (Ty->getKind()) {
  case lang::Type::Kind::Int:
    return ir::ScalarType::I32;
  case lang::Type::Kind::Unsigned:
    return ir::ScalarType::U32;
  case lang::Type::Kind::Float:
    return ir::ScalarType::F32;
  case lang::Type::Kind::Long:
    return ir::ScalarType::I64;
  case lang::Type::Kind::Double:
    return ir::ScalarType::F64;
  default:
    return Default;
  }
}

Expected<std::unique_ptr<TangramReduction>>
TangramReduction::create(const Options &Opts) {
  auto TR = std::unique_ptr<TangramReduction>(new TangramReduction());
  TR->Opts = Opts;
  TR->SourceText = Opts.SourceOverride.empty()
                       ? getReductionSource(Opts.Elem, Opts.Op)
                       : Opts.SourceOverride;
  TR->SM = std::make_unique<SourceManager>("reduction.tgr", TR->SourceText);
  TR->Diags = std::make_unique<DiagnosticEngine>(*TR->SM);
  TR->Ctx = std::make_unique<lang::ASTContext>();

  lang::Parser P(*TR->SM, *TR->Ctx, *TR->Diags);
  TR->TU = P.parseTranslationUnit();
  if (TR->Diags->hasErrors())
    return Status(StatusCode::ParseError, TR->Diags->renderAll());
  sema::Sema S(*TR->Ctx, *TR->Diags);
  if (!S.analyze(TR->TU))
    return Status(StatusCode::SemaError, TR->Diags->renderAll());
  // A source-level `__reduce(op, type);` declaration is authoritative: an
  // overriding source carries its own reduction axis, and the canonical
  // source's declaration matches the options it was generated from.
  if (TR->TU.HasReduceDecl) {
    TR->Opts.Op = TR->TU.DeclaredOp;
    TR->Opts.Elem = scalarTypeFor(TR->TU.DeclaredElem, Opts.Elem);
  }
  TR->PI = std::make_unique<pm::PassInstrumentation>(Opts.PM);
  TR->Infos = transforms::runTransformPipeline(TR->TU, TR->PI.get());
  TR->Synth =
      std::make_unique<KernelSynthesizer>(TR->TU, TR->Infos, TR->Opts.Op,
                                          TR->Opts.Elem);
  TR->Synth->setInstrumentation(TR->PI.get());
  TR->Space = enumerateVariants();
  TR->Cache = Opts.Engine.Cache
                  ? Opts.Engine.Cache
                  : std::make_shared<engine::VariantCache>(
                        Opts.Engine.CacheCapacity);
  TR->Pool = Opts.Engine.Pool
                 ? Opts.Engine.Pool
                 : std::make_shared<support::ThreadPool>(
                       Opts.Engine.ThreadCount);
  return Expected<std::unique_ptr<TangramReduction>>(std::move(TR));
}

engine::ExecutionEngine &
TangramReduction::engineFor(const sim::ArchDesc &Arch) const {
  auto It = Engines.find(Arch.Gen);
  if (It == Engines.end()) {
    engine::EngineOptions EO = Opts.Engine;
    EO.Cache = Cache;
    EO.Pool = Pool;
    auto E = std::make_unique<engine::ExecutionEngine>(Arch, EO);
    E->attachCompiler(*Synth, SourceText);
    It = Engines.emplace(Arch.Gen, std::move(E)).first;
  }
  return *It->second;
}

Expected<std::unique_ptr<SynthesizedVariant>>
TangramReduction::synthesize(const VariantDescriptor &Desc,
                             const OptimizationFlags &Opts) const {
  return Synth->synthesize(Desc, Opts);
}

Expected<std::string>
TangramReduction::emitCudaFor(const VariantDescriptor &Desc) const {
  auto S = Synth->synthesize(Desc);
  if (!S)
    return S.status();
  codegen::CudaEmitOptions Options;
  Options.EmitHostWrapper = true;
  return codegen::emitCuda(*(*S)->K, Options);
}

Expected<engine::ReduceResult>
TangramReduction::reduce(const sim::ArchDesc &Arch,
                         const engine::ReduceRequest &Req) const {
  return engineFor(Arch).run(Req);
}

Expected<engine::DiagnoseReport>
TangramReduction::diagnose(const sim::ArchDesc &Arch,
                           const engine::DiagnoseRequest &Req) const {
  return engineFor(Arch).diagnose(Req);
}

Expected<engine::RaceReport>
TangramReduction::raceCheck(const VariantDescriptor &Desc,
                            const sim::ArchDesc &Arch, size_t N) const {
  engine::DiagnoseRequest Req;
  Req.Kind = engine::DiagnoseKind::Race;
  Req.Desc = Desc;
  Req.N = N;
  auto Report = engineFor(Arch).diagnose(Req);
  if (!Report)
    return Report.status();
  return std::move(Report->Race);
}

std::string TangramReduction::renderRace(const sim::RaceDiagnostic &D) const {
  std::string Body = D.render();
  // Prefer the newer access's source position; scaffolding instructions
  // carry no location, so fall back to the older one.
  SourceLoc Loc = D.Second.Loc.isValid() ? D.Second.Loc : D.First.Loc;
  if (!Loc.isValid() || Loc.getOffset() > SourceText.size())
    return Body;
  LineColumn LC = SM->getLineColumn(Loc);
  return std::string(SM->getBufferName()) + ":" + std::to_string(LC.Line) +
         ":" + std::to_string(LC.Column) + ": " + Body;
}

double TangramReduction::timeVariant(const VariantDescriptor &Desc,
                                     const sim::ArchDesc &Arch,
                                     size_t N) const {
  // Honor the facade's timing backend so tune/timeVariant report on the
  // same clock (modeled cycles vs native host wall).
  auto T = engineFor(Arch).timeVariantChecked(Desc, N, 8, Opts.TimingBackend);
  return T ? *T : std::numeric_limits<double>::infinity();
}

engine::TuneOptions TangramReduction::makeTuneOptions() const {
  engine::TuneOptions TO;
  TO.BlockSizes = Opts.BlockSizes;
  TO.CoarsenFactors = Opts.CoarsenFactors;
  TO.MaxElemsPerBlock = Opts.MaxElemsPerBlock;
  TO.TimingBackend = Opts.TimingBackend;
  return TO;
}

VariantDescriptor TangramReduction::tune(const VariantDescriptor &Desc,
                                         const sim::ArchDesc &Arch,
                                         size_t N) const {
  auto Report = engineFor(Arch).tune(Desc, N, makeTuneOptions());
  // Engine misuse aside, tune always yields a report; a winnerless sweep
  // keeps the caller's descriptor (its timing prices it out downstream,
  // exactly like the unhardened tuner did).
  if (!Report || !Report->hasWinner())
    return Desc;
  return Report->Best;
}

TangramReduction::BestResult
TangramReduction::findBest(const sim::ArchDesc &Arch, size_t N) const {
  BestResult Best;
  Best.Seconds = std::numeric_limits<double>::infinity();
  auto Report = findBestReport(Arch, N);
  if (!Report)
    return Best;
  Best.Desc = Report->Best;
  Best.Seconds = Report->BestSeconds;
  Best.Fig6Label = Report->Fig6Label;
  return Best;
}

Expected<engine::TuneReport>
TangramReduction::findBestReport(const sim::ArchDesc &Arch, size_t N) const {
  return engineFor(Arch).findBest(Space.Pruned, N, makeTuneOptions());
}

Expected<engine::FaultReport>
TangramReduction::faultCheck(const VariantDescriptor &Desc,
                             const sim::ArchDesc &Arch, size_t N,
                             const sim::FaultPlan &Plan) const {
  engine::DiagnoseRequest Req;
  Req.Kind = engine::DiagnoseKind::Fault;
  Req.Desc = Desc;
  Req.N = N;
  Req.Plan = Plan;
  auto Report = engineFor(Arch).diagnose(Req);
  if (!Report)
    return Report.status();
  return std::move(Report->Fault);
}
