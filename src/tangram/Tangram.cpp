//===- Tangram.cpp - Public library facade ----------------------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "tangram/Tangram.h"

#include "codegen/CudaEmitter.h"
#include "lang/Parser.h"
#include "sema/Sema.h"
#include "transforms/Pipeline.h"

#include <algorithm>
#include <limits>

using namespace tangram;
using namespace tangram::synth;

std::unique_ptr<TangramReduction>
TangramReduction::create(const Options &Opts, std::string &Error) {
  auto TR = std::unique_ptr<TangramReduction>(new TangramReduction());
  TR->Opts = Opts;
  TR->SourceText = getReductionSource(Opts.Elem, Opts.Op);
  TR->SM = std::make_unique<SourceManager>("reduction.tgr", TR->SourceText);
  TR->Diags = std::make_unique<DiagnosticEngine>(*TR->SM);
  TR->Ctx = std::make_unique<lang::ASTContext>();

  lang::Parser P(*TR->SM, *TR->Ctx, *TR->Diags);
  TR->TU = P.parseTranslationUnit();
  if (TR->Diags->hasErrors()) {
    Error = TR->Diags->renderAll();
    return nullptr;
  }
  sema::Sema S(*TR->Ctx, *TR->Diags);
  if (!S.analyze(TR->TU)) {
    Error = TR->Diags->renderAll();
    return nullptr;
  }
  TR->Infos = transforms::runTransformPipeline(TR->TU);
  TR->Synth = std::make_unique<KernelSynthesizer>(
      TR->TU, TR->Infos, Opts.Op,
      Opts.Elem == ElemKind::Float ? ir::ScalarType::F32
                                   : ir::ScalarType::I32);
  TR->Space = enumerateVariants();
  TR->Cache =
      std::make_shared<engine::VariantCache>(Opts.VariantCacheCapacity);
  TR->Pool = std::make_shared<support::ThreadPool>(Opts.EngineThreads);
  return TR;
}

engine::ExecutionEngine &
TangramReduction::engineFor(const sim::ArchDesc &Arch) const {
  auto It = Engines.find(Arch.Gen);
  if (It == Engines.end()) {
    engine::EngineOptions EO;
    EO.Cache = Cache;
    EO.Pool = Pool;
    auto E = std::make_unique<engine::ExecutionEngine>(Arch, EO);
    E->attachCompiler(*Synth, SourceText);
    It = Engines.emplace(Arch.Gen, std::move(E)).first;
  }
  return *It->second;
}

std::unique_ptr<SynthesizedVariant>
TangramReduction::synthesize(const VariantDescriptor &Desc,
                             std::string &Error,
                             const OptimizationFlags &Opts) const {
  return Synth->synthesize(Desc, Error, Opts);
}

std::string TangramReduction::emitCudaFor(const VariantDescriptor &Desc,
                                          std::string &Error) const {
  auto S = Synth->synthesize(Desc, Error);
  if (!S)
    return "";
  codegen::CudaEmitOptions Options;
  Options.EmitHostWrapper = true;
  return codegen::emitCuda(*S->K, Options);
}

double TangramReduction::timeVariant(const VariantDescriptor &Desc,
                                     const sim::ArchDesc &Arch,
                                     size_t N) const {
  return engineFor(Arch).timeVariant(Desc, N);
}

VariantDescriptor TangramReduction::tune(const VariantDescriptor &Desc,
                                         const sim::ArchDesc &Arch,
                                         size_t N) const {
  VariantDescriptor Best = Desc;
  double BestTime = std::numeric_limits<double>::infinity();
  for (unsigned Block : Opts.BlockSizes) {
    if (Block > Arch.MaxThreadsPerBlock)
      continue;
    std::vector<unsigned> Coarsens =
        Desc.BlockDistributes ? Opts.CoarsenFactors
                              : std::vector<unsigned>{1};
    for (unsigned C : Coarsens) {
      if (static_cast<size_t>(Block) * C > Opts.MaxElemsPerBlock)
        continue;
      // Skip grossly oversized tiles (a single block would cover the
      // whole input many times over).
      if (static_cast<size_t>(Block) * C > std::max<size_t>(N * 4, 64))
        continue;
      VariantDescriptor Candidate = Desc;
      Candidate.BlockSize = Block;
      Candidate.Coarsen = C;
      double T = timeVariant(Candidate, Arch, N);
      if (T < BestTime) {
        BestTime = T;
        Best = Candidate;
      }
    }
  }
  return Best;
}

TangramReduction::BestResult
TangramReduction::findBest(const sim::ArchDesc &Arch, size_t N) const {
  BestResult Best;
  Best.Seconds = std::numeric_limits<double>::infinity();
  for (const VariantDescriptor &V : Space.Pruned) {
    VariantDescriptor Tuned = tune(V, Arch, N);
    double T = timeVariant(Tuned, Arch, N);
    if (T < Best.Seconds) {
      Best.Seconds = T;
      Best.Desc = Tuned;
      Best.Fig6Label = Tuned.getFigure6Label();
    }
  }
  return Best;
}
