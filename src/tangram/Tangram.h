//===- Tangram.h - Public library facade ------------------------*- C++ -*-===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The front door of the library: compiles the canonical reduction
/// spectrum, runs the Fig. 5 pre-processing pipeline, enumerates the code
/// variants of Section IV-B, synthesizes and tunes them, and selects the
/// best performer per architecture and problem size — the full workflow
/// the paper evaluates.
///
/// \code
///   auto TR = tangram::TangramReduction::create({});
///   if (!TR) {
///     std::cerr << TR.status().toString() << "\n";  // e.g. "parse-error: ..."
///     return 1;
///   }
///   auto Best = (*TR)->findBest(sim::getPascalP100(), 1 << 20);
///   auto Cuda = (*TR)->emitCudaFor(Best.Desc);
///   if (Cuda)
///     std::cout << *Cuda;
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef TANGRAM_TANGRAM_TANGRAM_H
#define TANGRAM_TANGRAM_TANGRAM_H

#include "engine/ExecutionEngine.h"
#include "gpusim/Arch.h"
#include "lang/ASTContext.h"
#include "pm/PassInstrumentation.h"
#include "support/Diagnostics.h"
#include "support/Expected.h"
#include "support/SourceManager.h"
#include "synth/KernelSynthesizer.h"
#include "synth/ReductionSpectrum.h"
#include "synth/VariantEnumerator.h"

#include <map>
#include <memory>
#include <string>

namespace tangram {

/// Compiled reduction spectrum + synthesis services.
class TangramReduction {
public:
  struct Options {
    ir::ScalarType Elem = ir::ScalarType::F32;
    ReduceOp Op = ReduceOp::Add;
    /// Tunable candidates explored by `tune` (the paper's tuning script).
    std::vector<unsigned> BlockSizes = {64, 128, 256, 512};
    std::vector<unsigned> CoarsenFactors = {1, 4, 16, 64};
    /// Per-block element cap during tuning (bounds simulation cost).
    unsigned MaxElemsPerBlock = 16384;
    /// Backend whose clock tune/findBest rank configurations with: the
    /// simulator's cycle model (default, the paper's methodology) or the
    /// native CPU engine's host wall-clock (`tgrc tune --backend=native`).
    engine::Backend TimingBackend = engine::Backend::Simulator;
    /// Execution-layer knobs (thread pool, variant cache, RaceCheck
    /// detector limits), passed to every lazily-created per-arch engine.
    engine::EngineOptions Engine;
    /// Compile this text instead of the canonical spectrum source when
    /// non-empty (testing hook: error paths, custom codelet sets).
    std::string SourceOverride;
    /// Pass-pipeline observability knobs (`--time-passes`, `--stats`,
    /// `--print-after-all`, `--verify-each`). One PassInstrumentation is
    /// created from these and shared by the AST pipeline at create() time
    /// and by every variant lowering afterwards.
    pm::InstrumentationOptions PM;
  };

  /// Parses + checks the canonical source (or Options::SourceOverride) and
  /// runs the transform pipeline. Failures carry StatusCode::ParseError or
  /// StatusCode::SemaError with the rendered diagnostics as the message.
  static support::Expected<std::unique_ptr<TangramReduction>>
  create(const Options &Opts);
  static support::Expected<std::unique_ptr<TangramReduction>> create() {
    return create(Options());
  }

  const lang::TranslationUnit &getUnit() const { return TU; }
  const synth::SearchSpace &getSearchSpace() const { return Space; }
  const Options &getOptions() const { return Opts; }
  /// The normalized canonical source text.
  const std::string &getSourceText() const { return SourceText; }
  /// The synthesizer lowering this spectrum (cache-key source of truth).
  const synth::KernelSynthesizer &getSynthesizer() const { return *Synth; }
  /// The Fig. 5 pre-processing pipeline results, keyed by codelet.
  const std::map<const lang::CodeletDecl *,
                 transforms::CodeletTransformInfo> &
  getTransformInfos() const {
    return Infos;
  }
  /// The shared pass observability sink: per-pass timings across the AST
  /// pipeline and every variant lowering, plus `--print-after-all` dumps.
  pm::PassInstrumentation &getInstrumentation() const { return *PI; }

  /// The lazily-created execution engine for \p Arch. Engines are created
  /// once per architecture generation and share one variant cache and one
  /// thread pool, so tuning sweeps across architectures never recompile a
  /// variant and block simulation scales with host cores.
  engine::ExecutionEngine &engineFor(const sim::ArchDesc &Arch) const;

  /// Synthesizes one variant (tunables taken from the descriptor).
  /// \p Opts applies the optional future-work IR passes (warp-aggregated
  /// atomics, loop unrolling). Failures carry StatusCode::UnknownVariant
  /// or StatusCode::SynthesisError.
  support::Expected<std::unique_ptr<synth::SynthesizedVariant>>
  synthesize(const synth::VariantDescriptor &Desc,
             const synth::OptimizationFlags &Opts = {}) const;

  /// Emits the CUDA C text for one variant (Listings 1-4 form).
  support::Expected<std::string>
  emitCudaFor(const synth::VariantDescriptor &Desc) const;

  /// Runs one reduction request on \p Arch's lazily-created engine. The
  /// request names everything — input buffer, size, descriptor, backend,
  /// deadline, optional op/dtype routing facts — so this is the entry the
  /// serving layer (and any queue-shaped caller) drives.
  /// See engine::ExecutionEngine::run.
  support::Expected<engine::ReduceResult>
  reduce(const sim::ArchDesc &Arch, const engine::ReduceRequest &Req) const;

  /// Runs one diagnostic campaign (race / fault / validate) on \p Arch's
  /// engine. See engine::ExecutionEngine::diagnose.
  support::Expected<engine::DiagnoseReport>
  diagnose(const sim::ArchDesc &Arch,
           const engine::DiagnoseRequest &Req) const;

  /// Deprecated positional spelling of diagnose(DiagnoseKind::Race).
  [[deprecated("build a DiagnoseRequest{DiagnoseKind::Race} and call "
               "diagnose()")]]
  support::Expected<engine::RaceReport>
  raceCheck(const synth::VariantDescriptor &Desc, const sim::ArchDesc &Arch,
            size_t N) const;

  /// "file:line:col: <diagnostic>" rendering of one race against the
  /// compiled codelet source (positions fall back to the raw diagnostic
  /// when the racing instruction is synthesized scaffolding).
  std::string renderRace(const sim::RaceDiagnostic &D) const;

  /// Picks the best tunables for \p Desc on \p Arch at size \p N by
  /// sampled simulation; returns the tuned descriptor. Delegates to the
  /// hardened engine tuner: configurations that trap, time out, or produce
  /// wrong reductions are quarantined and never win.
  synth::VariantDescriptor tune(const synth::VariantDescriptor &Desc,
                                const sim::ArchDesc &Arch, size_t N) const;

  /// A tuned, timed best-version query result.
  struct BestResult {
    synth::VariantDescriptor Desc;
    double Seconds = 0;
    std::string Fig6Label;
  };

  /// Tunes every pruned variant on \p Arch at size \p N and returns the
  /// fastest (the per-size winners of Figs. 8-10). Seconds is infinity
  /// when nothing survived tuning — use findBestReport for the structured
  /// account of what was quarantined and why.
  BestResult findBest(const sim::ArchDesc &Arch, size_t N) const;

  /// The hardened full-portfolio sweep: the best surviving variant plus
  /// every quarantine record. When nothing survives, the Status names the
  /// first quarantined configuration and its failure.
  support::Expected<engine::TuneReport>
  findBestReport(const sim::ArchDesc &Arch, size_t N) const;

  /// Deprecated positional spelling of diagnose(DiagnoseKind::Fault).
  [[deprecated("build a DiagnoseRequest{DiagnoseKind::Fault} and call "
               "diagnose()")]]
  support::Expected<engine::FaultReport>
  faultCheck(const synth::VariantDescriptor &Desc, const sim::ArchDesc &Arch,
             size_t N, const sim::FaultPlan &Plan) const;

  /// Modeled seconds for a tuned descriptor at size \p N (sampled run on a
  /// virtual input).
  double timeVariant(const synth::VariantDescriptor &Desc,
                     const sim::ArchDesc &Arch, size_t N) const;

  /// The engine TuneOptions equivalent of this facade's Options (tuning
  /// grid, per-block cap, validation size).
  engine::TuneOptions makeTuneOptions() const;

private:
  TangramReduction() = default;

  Options Opts;
  std::string SourceText;
  std::unique_ptr<SourceManager> SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::unique_ptr<lang::ASTContext> Ctx;
  lang::TranslationUnit TU;
  std::map<const lang::CodeletDecl *, transforms::CodeletTransformInfo>
      Infos;
  std::unique_ptr<pm::PassInstrumentation> PI;
  std::unique_ptr<synth::KernelSynthesizer> Synth;
  synth::SearchSpace Space;

  // Execution state. Mutable: tune/timeVariant/findBest are logically const
  // queries but lazily materialize engines and fill the shared cache.
  mutable std::shared_ptr<engine::VariantCache> Cache;
  mutable std::shared_ptr<support::ThreadPool> Pool;
  mutable std::map<sim::ArchGeneration,
                   std::unique_ptr<engine::ExecutionEngine>>
      Engines;
};

} // namespace tangram

#endif // TANGRAM_TANGRAM_TANGRAM_H
