//===- GeneralTransforms.cpp - Fig. 5 general transformations -------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "transforms/GeneralTransforms.h"

#include "lang/ASTVisitor.h"

using namespace tangram;
using namespace tangram::lang;
using namespace tangram::transforms;

const char *tangram::transforms::getDistPatternName(DistPattern P) {
  return P == DistPattern::Tiled ? "tiled" : "strided";
}

ArgumentLinkInfo
tangram::transforms::analyzeArgumentLink(const CodeletDecl *C) {
  ArgumentLinkInfo Info;
  for (const ParamDecl *P : C->getParams())
    if (P->getType()->isArray()) {
      Info.InputArray = P;
      break;
    }
  return Info;
}

std::optional<CompoundMapInfo>
tangram::transforms::analyzeMapStructure(const CodeletDecl *C) {
  struct Scanner : ASTVisitor<Scanner> {
    bool visitVarDecl(VarDecl *Var) {
      if (Var->getType()->isMap() && !Info.MapVar) {
        Info.MapVar = Var;
        if (Var->getCtorArgs().size() == 2) {
          if (const auto *FnRef = dyn_cast<DeclRefExpr>(
                  Var->getCtorArgs()[0]->ignoreParens()))
            Info.MappedSpectrum = FnRef->getName();
          if (const auto *Call = dyn_cast<CallExpr>(
                  Var->getCtorArgs()[1]->ignoreParens()))
            if (Call->getCalleeKind() == CalleeKind::Partition)
              Info.Partition = Call;
        }
      }
      if (Var->isTunable() && !Info.TunableCount)
        Info.TunableCount = Var;
      if (Var->getType()->isSequence() && !SawSequencePattern) {
        // The Sequence triple names its access pattern: tiled or strided
        // (bottom of Fig. 1b).
        for (const Expr *Arg : Var->getCtorArgs())
          if (const auto *Ref = dyn_cast<DeclRefExpr>(Arg->ignoreParens())) {
            if (Ref->getName() == "strided") {
              Info.Pattern = DistPattern::Strided;
              SawSequencePattern = true;
            } else if (Ref->getName() == "tiled") {
              Info.Pattern = DistPattern::Tiled;
              SawSequencePattern = true;
            }
          }
      }
      return true;
    }
    CompoundMapInfo Info;
    bool SawSequencePattern = false;
  };
  Scanner S;
  S.traverseCodelet(const_cast<CodeletDecl *>(C));
  if (!S.Info.MapVar)
    return std::nullopt;
  return S.Info;
}

ReturnInfo
tangram::transforms::analyzeReturnPromotion(const CodeletDecl *C) {
  struct Scanner : ASTVisitor<Scanner> {
    bool visitReturnStmt(ReturnStmt *R) {
      Last = R;
      return true;
    }
    const ReturnStmt *Last = nullptr;
  };
  Scanner S;
  S.traverseCodelet(const_cast<CodeletDecl *>(C));
  return {S.Last};
}
