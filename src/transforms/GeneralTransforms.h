//===- GeneralTransforms.h - Fig. 5 general transformations -----*- C++ -*-===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "general transformations" stage of Tangram's pre-processing
/// pipeline (Fig. 5): argument linking, index calculation, and return
/// promotion. Each is an analysis whose result the synthesizer consumes
/// when lowering codelets onto the GPU software hierarchy:
///
///  - argument linker: identifies the codelet's input container parameter
///    (wired to the kernel's global pointer argument);
///  - index calculation: extracts the Map/Partition structure of compound
///    codelets — the mapped spectrum, the tunable partition count, and the
///    access pattern (tiled or strided) declared by the Sequence triple;
///  - return promotion: locates the tail `return` whose value must be
///    promoted to a store into the partial-results array (`Return[...]`,
///    Listing 1) or an atomic accumulation (Listing 2).
///
//===----------------------------------------------------------------------===//

#ifndef TANGRAM_TRANSFORMS_GENERALTRANSFORMS_H
#define TANGRAM_TRANSFORMS_GENERALTRANSFORMS_H

#include "lang/AST.h"

#include <optional>

namespace tangram::transforms {

/// Access pattern declared by a compound codelet's Sequence triple.
enum class DistPattern : unsigned char { Tiled, Strided };

const char *getDistPatternName(DistPattern P);

/// Argument-linker result: the container parameter reduced over.
struct ArgumentLinkInfo {
  const lang::ParamDecl *InputArray = nullptr;
};

/// Index-calculation result for compound codelets.
struct CompoundMapInfo {
  /// The `Map map(f, partition(...))` declaration.
  const lang::VarDecl *MapVar = nullptr;
  /// Name of the mapped spectrum (`sum` in Fig. 1b).
  std::string MappedSpectrum;
  /// The partition(...) call.
  const lang::CallExpr *Partition = nullptr;
  /// The tunable partition count `p`.
  const lang::VarDecl *TunableCount = nullptr;
  /// Tiled or strided access (bottom of Fig. 1b).
  DistPattern Pattern = DistPattern::Tiled;
};

/// Return-promotion result.
struct ReturnInfo {
  /// The codelet's tail return statement (null for void codelets).
  const lang::ReturnStmt *TailReturn = nullptr;
};

ArgumentLinkInfo analyzeArgumentLink(const lang::CodeletDecl *C);
std::optional<CompoundMapInfo> analyzeMapStructure(const lang::CodeletDecl *C);
ReturnInfo analyzeReturnPromotion(const lang::CodeletDecl *C);

} // namespace tangram::transforms

#endif // TANGRAM_TRANSFORMS_GENERALTRANSFORMS_H
