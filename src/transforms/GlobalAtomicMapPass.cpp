//===- GlobalAtomicMapPass.cpp - Section III-A AST pass --------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "transforms/GlobalAtomicMapPass.h"

#include "lang/ASTVisitor.h"
#include "reduce/OpDef.h"

using namespace tangram;
using namespace tangram::lang;
using namespace tangram::transforms;

namespace {

/// Finds the Map atomic API call and any spectrum call consuming a Map.
class Finder : public ASTVisitor<Finder> {
public:
  explicit Finder(const std::string &SpectrumName)
      : SpectrumName(SpectrumName) {}

  bool visitMemberCallExpr(MemberCallExpr *M) {
    if (M->getMemberKind() != MemberKind::MapAtomic)
      return true;
    AtomicAPI = M;
    AtomicOp = M->getAtomicOp();
    if (const auto *Ref =
            dyn_cast<DeclRefExpr>(M->getBase()->ignoreParens()))
      MapVar = dyn_cast_if_present<VarDecl>(Ref->getDecl());
    return true;
  }

  bool visitCallExpr(CallExpr *C) {
    if (C->getCalleeKind() != CalleeKind::Spectrum)
      return true;
    // Is the Map (or any Map) the input of this spectrum call?
    for (Expr *Arg : C->getArgs()) {
      const auto *Ref = dyn_cast<DeclRefExpr>(Arg->ignoreParens());
      if (!Ref)
        continue;
      const auto *Var = dyn_cast_if_present<VarDecl>(Ref->getDecl());
      if (Var && Var->getType()->isMap()) {
        SpectrumCall = C;
        SpectrumConsumesMap = Var;
        // "Same computation" (Section III-A): the spectrum call re-applies
        // the codelet's own spectrum to the partial results.
        SameComputation = C->getCallee() == SpectrumName;
      }
    }
    return true;
  }

  const std::string &SpectrumName;
  MemberCallExpr *AtomicAPI = nullptr;
  const VarDecl *MapVar = nullptr;
  ReduceOp AtomicOp = ReduceOp::Add;
  CallExpr *SpectrumCall = nullptr;
  const VarDecl *SpectrumConsumesMap = nullptr;
  bool SameComputation = false;
};

} // namespace

std::optional<GlobalAtomicInfo>
tangram::transforms::analyzeGlobalAtomicMap(CodeletDecl *C) {
  Finder F(C->getName());
  F.traverseCodelet(C);
  if (!F.AtomicAPI)
    return std::nullopt;

  GlobalAtomicInfo Info;
  Info.AtomicAPI = F.AtomicAPI;
  Info.MapVar = F.MapVar;
  Info.Op = F.AtomicOp;
  const reduce::OpDef &D = reduce::getOpDef(Info.Op);
  Info.ReorderSafe = D.Commutative && D.Associative;
  // The spectrum call is only relevant when it consumes the same Map the
  // atomic API was invoked on.
  if (F.SpectrumCall && F.SpectrumConsumesMap == F.MapVar) {
    Info.SpectrumCall = F.SpectrumCall;
    Info.SameComputation = F.SameComputation;
  }
  return Info;
}

bool tangram::transforms::applyGlobalAtomicVariant(
    CodeletDecl *C, const GlobalAtomicInfo &Info, bool EnableAtomic) {
  if (EnableAtomic) {
    // The atomic API accumulates the partial results; the spectrum call
    // that would have done the same work is disabled (only when it applies
    // the same computation — Section III-A — and the op tolerates the
    // nondeterministic update order atomics impose).
    if (!Info.SpectrumCall || !Info.SameComputation || !Info.ReorderSafe)
      return false;
    Info.SpectrumCall->setDisabled(true);
    return true;
  }

  // Non-atomic variant: drop the `map.atomicX()` statement from whichever
  // compound block holds it.
  struct Remover : ASTVisitor<Remover> {
    explicit Remover(const MemberCallExpr *Target) : Target(Target) {}
    bool visitCompoundStmt(CompoundStmt *CS) {
      auto &Body = CS->getBody();
      for (auto It = Body.begin(); It != Body.end(); ++It) {
        const auto *E = dyn_cast<Expr>(*It);
        if (E && E->ignoreParens() == Target) {
          Body.erase(It);
          Removed = true;
          return true;
        }
      }
      return true;
    }
    const MemberCallExpr *Target;
    bool Removed = false;
  };
  Remover R(Info.AtomicAPI);
  R.traverseCodelet(C);
  return R.Removed;
}
