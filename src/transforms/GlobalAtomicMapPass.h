//===- GlobalAtomicMapPass.h - Section III-A AST pass -----------*- C++ -*-===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The global-memory atomic pass of Section III-A. A compound codelet may
/// carry both a Map atomic API call (`map.atomicAdd()`, Fig. 1b line 10)
/// and a non-atomic spectrum call (`return sum(map)`, line 11); the two are
/// mutually exclusive accumulation strategies. The pre-processing pass
/// locates Map primitives with an atomic API and, when the Map feeds a
/// spectrum call that applies the same computation, disables one of the
/// two depending on which code variant is being generated:
///
///  - atomic variant: the spectrum call is disabled, and Map partial
///    results are accumulated with `atomicAdd_block` (block level) /
///    `atomicAdd` (grid level) into a single-element accumulator
///    (Listing 2);
///  - non-atomic variant: the atomic API statement is removed, and partial
///    results go to an array consumed by a second spectrum call
///    (Listing 1).
///
//===----------------------------------------------------------------------===//

#ifndef TANGRAM_TRANSFORMS_GLOBALATOMICMAPPASS_H
#define TANGRAM_TRANSFORMS_GLOBALATOMICMAPPASS_H

#include "lang/AST.h"

#include <optional>

namespace tangram::transforms {

/// Analysis result: the atomic-accumulation opportunity of one compound
/// codelet.
struct GlobalAtomicInfo {
  /// The `map.atomicX()` API call.
  lang::MemberCallExpr *AtomicAPI = nullptr;
  /// The Map variable the API was invoked on.
  const lang::VarDecl *MapVar = nullptr;
  /// The spectrum call consuming the Map (null if none).
  lang::CallExpr *SpectrumCall = nullptr;
  /// The atomic operator requested by the API.
  ReduceOp Op = ReduceOp::Add;
  /// Whether the spectrum call applies the same computation as the atomic
  /// API (the pass only disables it in that case).
  bool SameComputation = false;
  /// Whether the op tolerates arbitrary inter-block accumulation order
  /// (reduce::OpDef Commutative && Associative). Atomics serialize updates
  /// in nondeterministic order, so the atomic variant is only generated
  /// when this holds.
  bool ReorderSafe = true;
};

/// Scans \p C for a Map atomic API. Returns nullopt when the codelet has
/// no atomic API call.
std::optional<GlobalAtomicInfo> analyzeGlobalAtomicMap(lang::CodeletDecl *C);

/// Mutates \p C (typically a per-variant clone) for one of the two
/// variants: \p EnableAtomic disables the subsumed spectrum call; otherwise
/// the atomic API statement is removed from the body. Returns true if a
/// change was made.
bool applyGlobalAtomicVariant(lang::CodeletDecl *C,
                              const GlobalAtomicInfo &Info,
                              bool EnableAtomic);

} // namespace tangram::transforms

#endif // TANGRAM_TRANSFORMS_GLOBALATOMICMAPPASS_H
