//===- Pipeline.cpp - Fig. 5 pre-processing pipeline -----------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "transforms/Pipeline.h"

#include "support/Statistics.h"

using namespace tangram;
using namespace tangram::lang;
using namespace tangram::transforms;

using support::Statistics;
using support::Status;

void tangram::transforms::buildAstPipeline(
    pm::PassManager<CodeletAnalysis> &PM) {
  // General transformations (Fig. 5, middle stage).
  PM.addPass("arg-link", [](CodeletAnalysis &U) {
    U.Info.ArgLink = analyzeArgumentLink(U.C);
    return Status::success();
  });
  PM.addPass("return-promote", [](CodeletAnalysis &U) {
    U.Info.Return = analyzeReturnPromotion(U.C);
    return Status::success();
  });
  PM.addPass("map-structure", [](CodeletAnalysis &U) {
    U.Info.MapStructure = analyzeMapStructure(U.C);
    if (U.Info.MapStructure)
      Statistics::get().add("map-structure.compound-codelets");
    return Status::success();
  });
  // CUDA-specific transformations (Fig. 5, right stage).
  PM.addPass("global-atomic-detect", [](CodeletAnalysis &U) {
    U.Info.GlobalAtomic = analyzeGlobalAtomicMap(U.C);
    if (U.Info.GlobalAtomic) {
      Statistics::get().add("global-atomic.opportunities");
      if (U.Info.GlobalAtomic->SameComputation)
        Statistics::get().add("global-atomic.spectrum-calls-subsumed");
    }
    return Status::success();
  });
  PM.addPass("shared-atomic-analyze", [](CodeletAnalysis &U) {
    U.Info.SharedAtomics = analyzeSharedAtomics(U.C);
    Statistics::get().add("shared-atomic.writes",
                          U.Info.SharedAtomics.Writes.size());
    return Status::success();
  });
  PM.addPass("warp-shuffle-detect", [](CodeletAnalysis &U) {
    U.Info.Shuffles = detectWarpShuffle(U.C, U.Op);
    Statistics::get().add("warp-shuffle.opportunities",
                          U.Info.Shuffles.size());
    for (const ShuffleOpportunity &S : U.Info.Shuffles)
      if (S.ElideArray)
        Statistics::get().add("warp-shuffle.elidable-arrays");
    return Status::success();
  });
}

std::map<const CodeletDecl *, CodeletTransformInfo>
tangram::transforms::runTransformPipeline(const TranslationUnit &TU,
                                          pm::PassInstrumentation *PI) {
  pm::PassManager<CodeletAnalysis> PM;
  buildAstPipeline(PM);
  PM.setInstrumentation(PI);
  std::map<const CodeletDecl *, CodeletTransformInfo> Result;
  for (CodeletDecl *C : TU.Codelets) {
    CodeletAnalysis Unit;
    Unit.C = C;
    if (TU.HasReduceDecl)
      Unit.Op = TU.DeclaredOp;
    // Every AST analysis is total; the manager's Status plumbing exists
    // for the lowering pipelines that share it.
    (void)PM.run(Unit);
    Result.emplace(C, std::move(Unit.Info));
  }
  return Result;
}
