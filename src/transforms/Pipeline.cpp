//===- Pipeline.cpp - Fig. 5 pre-processing pipeline -----------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "transforms/Pipeline.h"

using namespace tangram;
using namespace tangram::lang;
using namespace tangram::transforms;

std::map<const CodeletDecl *, CodeletTransformInfo>
tangram::transforms::runTransformPipeline(const TranslationUnit &TU) {
  std::map<const CodeletDecl *, CodeletTransformInfo> Result;
  for (CodeletDecl *C : TU.Codelets) {
    CodeletTransformInfo Info;
    // General transformations (Fig. 5, middle stage).
    Info.ArgLink = analyzeArgumentLink(C);
    Info.Return = analyzeReturnPromotion(C);
    Info.MapStructure = analyzeMapStructure(C);
    // CUDA-specific transformations (Fig. 5, right stage).
    Info.GlobalAtomic = analyzeGlobalAtomicMap(C);
    Info.SharedAtomics = analyzeSharedAtomics(C);
    Info.Shuffles = detectWarpShuffle(C);
    Result.emplace(C, std::move(Info));
  }
  return Result;
}
