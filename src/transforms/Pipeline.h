//===- Pipeline.h - Fig. 5 pre-processing pipeline --------------*- C++ -*-===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pre-processing pipeline of Fig. 5: after the planner builds the
/// AST, general transformations gather metadata, then the CUDA-specific
/// passes (atomic instructions, warp shuffle instructions) discover the
/// code-variant axes. The synthesizer iterates the discovered variants
/// ("New Variant?" loop) and generates CUDA for each.
///
//===----------------------------------------------------------------------===//

#ifndef TANGRAM_TRANSFORMS_PIPELINE_H
#define TANGRAM_TRANSFORMS_PIPELINE_H

#include "pm/PassManager.h"
#include "transforms/GeneralTransforms.h"
#include "transforms/GlobalAtomicMapPass.h"
#include "transforms/SharedAtomicAnalysis.h"
#include "transforms/WarpShuffleDetect.h"

#include <map>

namespace tangram::transforms {

/// Everything the pre-processing pipeline learned about one codelet.
struct CodeletTransformInfo {
  ArgumentLinkInfo ArgLink;
  ReturnInfo Return;
  std::optional<CompoundMapInfo> MapStructure;   ///< Compound codelets.
  std::optional<GlobalAtomicInfo> GlobalAtomic;  ///< Section III-A.
  SharedAtomicInfo SharedAtomics;                ///< Section III-B.
  std::vector<ShuffleOpportunity> Shuffles;      ///< Section III-C.

  /// Number of independent variant axes this codelet contributes: the
  /// global-atomic toggle and the shuffle toggle each double the variant
  /// count; shared-atomic codelets are distinct codelets by construction.
  unsigned variantAxisCount() const {
    unsigned Axes = 0;
    if (GlobalAtomic && GlobalAtomic->SameComputation &&
        GlobalAtomic->ReorderSafe)
      ++Axes;
    if (!Shuffles.empty())
      ++Axes;
    return Axes;
  }
};

/// The unit the AST pipeline's passes run over: one codelet and the
/// analysis results accumulated for it so far.
struct CodeletAnalysis {
  lang::CodeletDecl *C = nullptr;
  /// The unit's spectrum operator (from the `__reduce` declaration when
  /// present); the OpDef-gated passes consult its algebraic flags.
  ReduceOp Op = ReduceOp::Add;
  CodeletTransformInfo Info;
};

/// Registers the Fig. 5 AST passes with \p PM in pipeline order: the
/// general transformations (argument linker, return promotion, map
/// structure) followed by the CUDA-specific Section III analyses
/// (global-atomic detection, shared-atomic analysis, warp-shuffle
/// detection). Each pass bumps its support::Statistics counters
/// (`global-atomic.opportunities`, `shared-atomic.writes`,
/// `warp-shuffle.opportunities`, ...) as it discovers variant axes.
void buildAstPipeline(pm::PassManager<CodeletAnalysis> &PM);

/// Runs the full pipeline over every codelet of \p TU (which must have
/// passed Sema). Results are keyed by codelet. Pass timings are reported
/// into \p PI when provided.
std::map<const lang::CodeletDecl *, CodeletTransformInfo>
runTransformPipeline(const lang::TranslationUnit &TU,
                     pm::PassInstrumentation *PI = nullptr);

} // namespace tangram::transforms

#endif // TANGRAM_TRANSFORMS_PIPELINE_H
