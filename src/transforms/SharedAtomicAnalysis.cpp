//===- SharedAtomicAnalysis.cpp - Section III-B AST pass -------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "transforms/SharedAtomicAnalysis.h"

#include "lang/ASTVisitor.h"
#include "reduce/OpDef.h"

using namespace tangram;
using namespace tangram::lang;
using namespace tangram::transforms;

namespace {

class Scanner : public ASTVisitor<Scanner> {
public:
  explicit Scanner(SharedAtomicInfo &Info) : Info(Info) {}

  bool visitVarDecl(VarDecl *Var) {
    if (Var->isShared() && Var->hasAtomicQualifier())
      Info.AtomicVars.push_back(Var);
    return true;
  }

  bool visitBinaryExpr(BinaryExpr *B) {
    if (!B->isAssignment())
      return true;
    const auto *Ref = dyn_cast<DeclRefExpr>(B->getLHS()->ignoreParens());
    if (!Ref)
      return true;
    const auto *Var = dyn_cast_if_present<VarDecl>(Ref->getDecl());
    if (!Var || !Var->isShared() || !Var->hasAtomicQualifier())
      return true;
    // Both plain assignment (`partial = val`, redefined by the qualifier
    // as an atomic accumulation — Fig. 3) and compound assignment
    // (`partial += val`) lower to the qualifier's atomic op.
    ReduceOp Op = Var->getAtomicOp();
    Info.Writes.push_back({B, Var, Op, reduce::getOpDef(Op).NeedsIndex});
    return true;
  }

private:
  SharedAtomicInfo &Info;
};

} // namespace

SharedAtomicInfo
tangram::transforms::analyzeSharedAtomics(const CodeletDecl *C) {
  SharedAtomicInfo Info;
  Scanner S(Info);
  S.traverseCodelet(const_cast<CodeletDecl *>(C));
  return Info;
}
