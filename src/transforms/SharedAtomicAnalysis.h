//===- SharedAtomicAnalysis.h - Section III-B AST pass ----------*- C++ -*-===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared-memory atomic pass of Section III-B. The new `_atomicAdd` /
/// `_atomicSub` / `_atomicMax` / `_atomicMin` qualifiers combine with
/// `__shared` to declare atomically-updated accumulators (Fig. 3). This
/// pass identifies those declarations and every write operation targeting
/// them; code generation lowers each such write to an atomic instruction
/// on shared memory (Listing 3 line 27).
///
//===----------------------------------------------------------------------===//

#ifndef TANGRAM_TRANSFORMS_SHAREDATOMICANALYSIS_H
#define TANGRAM_TRANSFORMS_SHAREDATOMICANALYSIS_H

#include "lang/AST.h"

#include <vector>

namespace tangram::transforms {

/// One write to an atomic shared variable.
struct SharedAtomicWrite {
  /// The assignment that lowers to an atomic instruction.
  const lang::BinaryExpr *Write = nullptr;
  /// The `__shared _atomicX` variable being updated.
  const lang::VarDecl *Var = nullptr;
  /// Operator taken from the variable's qualifier.
  ReduceOp Op = ReduceOp::Add;
  /// From reduce::OpDef: the accumulator carries a (value, index) pair
  /// (ArgMin/ArgMax), so the write lowers to a pair-CAS update rather
  /// than a single-word atomic.
  bool NeedsIndex = false;
};

/// Result of the analysis over one codelet.
struct SharedAtomicInfo {
  /// All `__shared _atomicX` declarations.
  std::vector<const lang::VarDecl *> AtomicVars;
  /// All writes that must become shared-memory atomic instructions.
  std::vector<SharedAtomicWrite> Writes;

  bool any() const { return !Writes.empty(); }
  /// Whether \p W is a recorded atomic write.
  bool isAtomicWrite(const lang::BinaryExpr *W) const {
    for (const SharedAtomicWrite &A : Writes)
      if (A.Write == W)
        return true;
    return false;
  }
};

/// Scans \p C for atomic shared variables and their writes.
SharedAtomicInfo analyzeSharedAtomics(const lang::CodeletDecl *C);

} // namespace tangram::transforms

#endif // TANGRAM_TRANSFORMS_SHAREDATOMICANALYSIS_H
