//===- WarpShuffleDetect.cpp - Section III-C / Fig. 4 AST pass ------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "transforms/WarpShuffleDetect.h"

#include "lang/ASTVisitor.h"
#include "reduce/OpDef.h"

#include <optional>
#include <unordered_map>

using namespace tangram;
using namespace tangram::lang;
using namespace tangram::transforms;

namespace {

/// True when \p E contains a member call of kind \p MK.
bool containsMember(const Expr *E, MemberKind MK) {
  struct Search : ASTVisitor<Search> {
    explicit Search(MemberKind MK) : MK(MK) {}
    bool visitMemberCallExpr(MemberCallExpr *M) {
      if (M->getMemberKind() == MK)
        Found = true;
      return true;
    }
    MemberKind MK;
    bool Found = false;
  };
  Search S(MK);
  S.traverseStmt(const_cast<Expr *>(E));
  return S.Found;
}

/// True when \p E contains any Vector member call (step 1 of Fig. 4).
bool containsVectorMember(const Expr *E) {
  return containsMember(E, MemberKind::VectorMaxSize) ||
         containsMember(E, MemberKind::VectorSize) ||
         containsMember(E, MemberKind::VectorThreadId) ||
         containsMember(E, MemberKind::VectorLaneId) ||
         containsMember(E, MemberKind::VectorVectorId);
}

/// True when \p E references the declaration \p D.
bool referencesDecl(const Expr *E, const Decl *D) {
  struct Search : ASTVisitor<Search> {
    explicit Search(const Decl *D) : D(D) {}
    bool visitDeclRefExpr(DeclRefExpr *R) {
      if (R->getDecl() == D)
        Found = true;
      return true;
    }
    const Decl *D;
    bool Found = false;
  };
  Search S(D);
  S.traverseStmt(const_cast<Expr *>(E));
  return S.Found;
}

const VarDecl *declOf(const Expr *E) {
  const auto *Ref = dyn_cast<DeclRefExpr>(E->ignoreParens());
  return Ref ? dyn_cast_if_present<VarDecl>(Ref->getDecl()) : nullptr;
}

/// Step 2 of Fig. 4: the iterator changes by a constant every iteration;
/// returns the direction (Down for decreasing, Up for increasing), or
/// nullopt when the update shape does not qualify.
std::optional<ir::ShuffleMode> iteratorDirection(const Expr *Inc,
                                                 const VarDecl *Iterator) {
  const Expr *E = Inc->ignoreParens();
  const auto *B = dyn_cast<BinaryExpr>(E);
  if (!B)
    return std::nullopt;
  if (declOf(B->getLHS()) != Iterator)
    return std::nullopt;
  const Expr *RHS = B->getRHS()->ignoreParens();
  const auto *Const = dyn_cast<IntLiteralExpr>(RHS);
  switch (B->getOp()) {
  case BinaryOpKind::DivAssign: // offset /= 2 : halving — decreasing.
    if (Const && Const->getValue() >= 2)
      return ir::ShuffleMode::Down;
    return std::nullopt;
  case BinaryOpKind::SubAssign: // offset -= c : decreasing.
    if (Const && Const->getValue() > 0)
      return ir::ShuffleMode::Down;
    return std::nullopt;
  case BinaryOpKind::MulAssign: // offset *= 2 : doubling — increasing.
    if (Const && Const->getValue() >= 2)
      return ir::ShuffleMode::Up;
    return std::nullopt;
  case BinaryOpKind::AddAssign: // offset += c : increasing.
    if (Const && Const->getValue() > 0)
      return ir::ShuffleMode::Up;
    return std::nullopt;
  case BinaryOpKind::Assign: {
    // offset = offset / 2 and friends.
    const auto *Update = dyn_cast<BinaryExpr>(RHS);
    if (!Update || declOf(Update->getLHS()) != Iterator)
      return std::nullopt;
    const auto *C = dyn_cast<IntLiteralExpr>(Update->getRHS()->ignoreParens());
    if (!C)
      return std::nullopt;
    if ((Update->getOp() == BinaryOpKind::Div && C->getValue() >= 2) ||
        (Update->getOp() == BinaryOpKind::Sub && C->getValue() > 0))
      return ir::ShuffleMode::Down;
    if ((Update->getOp() == BinaryOpKind::Mul && C->getValue() >= 2) ||
        (Update->getOp() == BinaryOpKind::Add && C->getValue() > 0))
      return ir::ShuffleMode::Up;
    return std::nullopt;
  }
  default:
    return std::nullopt;
  }
}

/// Statements of a loop body as a flat list (single statement bodies are
/// treated as one-element lists).
std::vector<Stmt *> bodyStmts(const Stmt *Body) {
  if (const auto *CS = dyn_cast<CompoundStmt>(Body))
    return CS->getBody();
  return {const_cast<Stmt *>(Body)};
}

/// Matches one forloop against the full Fig. 4 pattern.
std::optional<ShuffleOpportunity> matchLoop(const ForStmt *Loop) {
  // The iterator must be declared in the loop init.
  const auto *InitDecl = dyn_cast_if_present<DeclStmt>(Loop->getInit());
  if (!InitDecl || !Loop->getCond() || !Loop->getInc())
    return std::nullopt;
  const VarDecl *Iterator = InitDecl->getVar();

  // Step (1): bounds based on the Vector primitive.
  if (!Iterator->getInit() || !containsVectorMember(Iterator->getInit()))
    return std::nullopt;

  // Step (2): iterator changes by a constant each iteration.
  std::optional<ir::ShuffleMode> Direction =
      iteratorDirection(Loop->getInc(), Iterator);
  if (!Direction)
    return std::nullopt;

  // Walk the body looking for the reduction (step 3) and the write-back
  // (steps 5-7).
  ShuffleOpportunity Opp;
  Opp.Loop = Loop;
  Opp.Iterator = Iterator;
  Opp.Direction = *Direction;

  for (Stmt *S : bodyStmts(Loop->getBody())) {
    auto *E = dyn_cast<Expr>(S);
    if (!E)
      continue;
    auto *B = dyn_cast<BinaryExpr>(E->ignoreParens());
    if (!B || !B->isAssignment())
      continue;

    const VarDecl *LHSVar = declOf(B->getLHS());

    // Reduction into a local accumulator: `val += (...) ? tmp[f(tid,it)] : 0`
    if (!Opp.Reduction && LHSVar && !LHSVar->isShared() &&
        B->getOp() == BinaryOpKind::AddAssign) {
      // Step (3): the RHS reads a shared array.
      struct FindShared : ASTVisitor<FindShared> {
        bool visitIndexExpr(IndexExpr *I) {
          if (const VarDecl *V = declOf(I->getBase()))
            if (V->isShared() && V->isArrayForm() && !Array) {
              Array = V;
              Index = I->getIndex();
            }
          return true;
        }
        const VarDecl *Array = nullptr;
        const Expr *Index = nullptr;
      };
      FindShared FS;
      FS.traverseStmt(B->getRHS());
      if (FS.Array) {
        // Step (4): the read index is a function of ThreadId() and the
        // iterator.
        if (containsMember(FS.Index, MemberKind::VectorThreadId) &&
            referencesDecl(FS.Index, Iterator)) {
          Opp.Reduction = B;
          Opp.Array = FS.Array;
          Opp.Accumulator = LHSVar;
        }
      }
      continue;
    }

    // Write-back: `tmp[f(ThreadId())] = val` (steps 5-7).
    if (Opp.Reduction && !Opp.WriteBack) {
      const auto *Idx = dyn_cast<IndexExpr>(B->getLHS()->ignoreParens());
      if (!Idx || B->getOp() != BinaryOpKind::Assign)
        continue;
      // Step (5,6): written to the same shared array; the stored value is
      // the accumulator.
      if (declOf(Idx->getBase()) != Opp.Array)
        continue;
      if (declOf(B->getRHS()) != Opp.Accumulator)
        continue;
      // Step (7): index a function of ThreadId() only (not the iterator).
      if (!containsMember(Idx->getIndex(), MemberKind::VectorThreadId) ||
          referencesDecl(Idx->getIndex(), Iterator))
        continue;
      Opp.WriteBack = B;
    }
  }

  if (!Opp.Reduction || !Opp.WriteBack)
    return std::nullopt;
  return Opp;
}

/// Collects every forloop of the codelet in source order.
std::vector<const ForStmt *> collectLoops(const CodeletDecl *C) {
  struct Collect : ASTVisitor<Collect> {
    bool visitForStmt(ForStmt *F) {
      Loops.push_back(F);
      return true;
    }
    std::vector<const ForStmt *> Loops;
  };
  Collect Coll;
  Coll.traverseCodelet(const_cast<CodeletDecl *>(C));
  return Coll.Loops;
}

/// Decides array elision: the array can be removed when its contents come
/// directly from the codelet input. We trace the feeding store
/// `A[g(tid)] = v` outside the matched loops and require v's reaching
/// definition to read the input array parameter; stores fed by another
/// matched loop's accumulator (producer-consumer) keep the array.
bool canElideArray(const CodeletDecl *C, const VarDecl *Array,
                   const std::vector<ShuffleOpportunity> &Matches) {
  struct Walk : ASTVisitor<Walk> {
    Walk(const VarDecl *Array, const std::vector<ShuffleOpportunity> &Matches)
        : Array(Array), Matches(Matches) {}

    bool insideMatchedLoop(const ForStmt *F) const {
      for (const ShuffleOpportunity &M : Matches)
        if (M.Loop == F)
          return true;
      return false;
    }

    bool visitForStmt(ForStmt *F) {
      if (insideMatchedLoop(F)) {
        // The matched loop's own reads/writes of the array are part of
        // the rewritten pattern; skip them, but remember passing it for
        // the producer-consumer ordering check.
        SeenMatchedLoop = true;
        return false;
      }
      return true;
    }

    bool visitBinaryExpr(BinaryExpr *B) {
      if (!B->isAssignment())
        return true;
      // Track scalar defs for the reaching-definition query.
      if (const VarDecl *V = declOf(B->getLHS())) {
        LastDef[V] = B->getRHS();
        return true;
      }
      // A store into the array outside matched loops.
      const auto *Idx = dyn_cast<IndexExpr>(B->getLHS()->ignoreParens());
      if (Idx && declOf(Idx->getBase()) == Array) {
        const VarDecl *Stored = declOf(B->getRHS());
        const Expr *Def = nullptr;
        if (Stored) {
          auto It = LastDef.find(Stored);
          if (It != LastDef.end())
            Def = It->second;
        } else {
          Def = B->getRHS();
        }
        if (!Def || !readsInputParam(Def))
          FedByNonInput = true;
        // A matched loop between the feeding def and this store means a
        // producer-consumer chain: approximate by checking whether any
        // matched loop precedes this store (source order) while the store
        // follows the first match.
        if (SeenMatchedLoop)
          FedByNonInput = true;
      }
      return true;
    }

    bool visitIndexExpr(IndexExpr *I) {
      if (declOf(I->getBase()) == Array)
        ReadOutsideMatchedLoop = true;
      return true;
    }

    bool readsInputParam(const Expr *E) {
      struct Search : ASTVisitor<Search> {
        bool visitIndexExpr(IndexExpr *I) {
          const auto *Ref =
              dyn_cast<DeclRefExpr>(I->getBase()->ignoreParens());
          if (Ref && isa_and_present<ParamDecl>(Ref->getDecl()))
            Found = true;
          return true;
        }
        bool Found = false;
      };
      Search S;
      S.traverseStmt(const_cast<Expr *>(E));
      return S.Found;
    }

    const VarDecl *Array;
    const std::vector<ShuffleOpportunity> &Matches;
    std::unordered_map<const VarDecl *, const Expr *> LastDef;
    bool FedByNonInput = false;
    bool ReadOutsideMatchedLoop = false;
    bool SeenMatchedLoop = false;
  };

  Walk W(Array, Matches);
  W.traverseCodelet(const_cast<CodeletDecl *>(C));
  return !W.FedByNonInput;
}

} // namespace

std::vector<ShuffleOpportunity>
tangram::transforms::detectWarpShuffle(const CodeletDecl *C, ReduceOp Op) {
  std::vector<ShuffleOpportunity> Result;
  // The butterfly rewrite pairs lanes in halving order, reassociating and
  // commuting the fold relative to the source loop; the OpDef flags decide
  // whether that is observationally equivalent.
  const reduce::OpDef &D = reduce::getOpDef(Op);
  if (!D.Commutative || !D.Associative)
    return Result;
  for (const ForStmt *Loop : collectLoops(C))
    if (std::optional<ShuffleOpportunity> Opp = matchLoop(Loop))
      Result.push_back(*Opp);
  for (ShuffleOpportunity &Opp : Result)
    Opp.ElideArray = canElideArray(C, Opp.Array, Result);
  return Result;
}
