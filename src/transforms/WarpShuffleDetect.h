//===- WarpShuffleDetect.h - Section III-C / Fig. 4 AST pass ----*- C++ -*-===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The warp-shuffle detection pass of Section III-C, implementing the
/// seven-step forloop pattern matcher of Figure 4:
///
///  (1) the forloop bounds are based on Vector primitive member functions
///      (e.g. `offset = vthread.MaxSize()/2`);
///  (2) the iterator decreases (or increases) by a constant factor or
///      stride every iteration;
///  (3) the body reads a `__shared` array, reducing into a local
///      accumulator;
///  (4) the shared array read index is a function of `Vector.ThreadId()`
///      and the forloop iterator;
///  (5,6) the accumulator value is written back to the same shared array;
///  (7) at an index that is a function of `Vector.ThreadId()` only.
///
/// A match means the loop can be rewritten with warp shuffle instructions:
/// `__shfl_down` when the loop iterates in the negative direction of the
/// Vector, `__shfl_up` otherwise. The pass additionally decides whether
/// the shared array itself can be elided: it can when its contents come
/// directly from the codelet's input array; it cannot when a
/// producer-consumer relation links two matched loops (the `partial`
/// array of Fig. 1c / Listing 4).
///
//===----------------------------------------------------------------------===//

#ifndef TANGRAM_TRANSFORMS_WARPSHUFFLEDETECT_H
#define TANGRAM_TRANSFORMS_WARPSHUFFLEDETECT_H

#include "ir/KernelIR.h"
#include "lang/AST.h"

#include <vector>

namespace tangram::transforms {

/// One forloop that can be rewritten with warp shuffle instructions.
struct ShuffleOpportunity {
  /// The matched tree-summation loop.
  const lang::ForStmt *Loop = nullptr;
  /// The `__shared` array the loop reduces over.
  const lang::VarDecl *Array = nullptr;
  /// The per-thread accumulator local.
  const lang::VarDecl *Accumulator = nullptr;
  /// The loop induction variable (the shuffle offset).
  const lang::VarDecl *Iterator = nullptr;
  /// shfl_down for negative-direction loops, shfl_up otherwise.
  ir::ShuffleMode Direction = ir::ShuffleMode::Down;
  /// True when no other code depends on the array and its contents come
  /// directly from the input, so no shared memory need be allocated.
  bool ElideArray = false;
  /// The write-back statement (`tmp[ThreadId()] = val`) inside the loop.
  const lang::BinaryExpr *WriteBack = nullptr;
  /// The reduction statement (`val += ... tmp[...] ...`).
  const lang::BinaryExpr *Reduction = nullptr;
};

/// Runs the Fig. 4 matcher over every forloop of \p C. The shuffle
/// rewrite reassociates and commutes the fold (lanes pair up in halving
/// order rather than source order), so opportunities are only reported
/// when \p Op is marked Commutative and Associative in the reduce::OpDef
/// table; for other ops the loop must keep its shared-memory form.
std::vector<ShuffleOpportunity>
detectWarpShuffle(const lang::CodeletDecl *C, ReduceOp Op = ReduceOp::Add);

} // namespace tangram::transforms

#endif // TANGRAM_TRANSFORMS_WARPSHUFFLEDETECT_H
