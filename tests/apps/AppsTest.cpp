//===- AppsTest.cpp - Histogram and Scan application tests --------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// The paper motivates parallel reduction as the building block of
// Histogram [12,13] and Scan [14]; these applications exercise the same
// substrate (shared/global atomics, warp shuffles) on real workloads.
//
//===----------------------------------------------------------------------===//

#include "apps/Histogram.h"
#include "apps/Scan.h"

#include <gtest/gtest.h>

#include <random>

using namespace tangram;
using namespace tangram::apps;

namespace {

std::vector<int> randomKeys(size_t N, unsigned NumBins, unsigned Seed) {
  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<int> Dist(0, static_cast<int>(NumBins) - 1);
  std::vector<int> Keys(N);
  for (int &K : Keys)
    K = Dist(Rng);
  return Keys;
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

class HistogramCorrectness
    : public ::testing::TestWithParam<
          std::tuple<HistogramStrategy, unsigned, size_t>> {};

TEST_P(HistogramCorrectness, MatchesReference) {
  auto [Strategy, NumBins, N] = GetParam();
  std::vector<int> Keys = randomKeys(N, NumBins, 17);
  std::vector<long long> Expected = referenceHistogram(Keys, NumBins);

  Histogram App(NumBins, Strategy);
  unsigned Count = 0;
  const sim::ArchDesc *Archs = sim::getAllArchs(Count);
  for (unsigned A = 0; A != Count; ++A) {
    engine::ExecutionEngine E(Archs[A]);
    sim::BufferId In = E.getDevice().alloc(ir::ScalarType::I32, N);
    E.getDevice().writeInts(In, Keys);
    HistogramResult R = App.run(E, In, N);
    ASSERT_TRUE(R.Ok) << Archs[A].Name << ": " << R.Error;
    EXPECT_EQ(R.Bins, Expected) << Archs[A].Name;
    EXPECT_GT(R.Seconds, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HistogramCorrectness,
    ::testing::Combine(
        ::testing::Values(HistogramStrategy::GlobalAtomics,
                          HistogramStrategy::SharedPrivatized),
        ::testing::Values<unsigned>(8, 64, 256),
        ::testing::Values<size_t>(100, 4096, 65536)),
    [](const auto &Info) {
      std::string Name =
          std::get<0>(Info.param) == HistogramStrategy::GlobalAtomics
              ? "global"
              : "shared";
      return Name + "_b" + std::to_string(std::get<1>(Info.param)) + "_n" +
             std::to_string(std::get<2>(Info.param));
    });

TEST(Histogram, SkewedDistribution) {
  // All keys in one bin: worst-case contention.
  const unsigned NumBins = 64;
  const size_t N = 10000;
  std::vector<int> Keys(N, 7);
  engine::ExecutionEngine E(sim::getKeplerK40c());
  for (HistogramStrategy S : {HistogramStrategy::GlobalAtomics,
                              HistogramStrategy::SharedPrivatized}) {
    Histogram App(NumBins, S);
    size_t Mark = E.deviceMark();
    sim::BufferId In = E.getDevice().alloc(ir::ScalarType::I32, N);
    E.getDevice().writeInts(In, Keys);
    HistogramResult R = App.run(E, In, N);
    E.deviceRelease(Mark);
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Bins[7], static_cast<long long>(N));
  }
}

TEST(Histogram, OutOfRangeKeysDropped) {
  Histogram App(16, HistogramStrategy::GlobalAtomics);
  std::vector<int> Keys = {0, 5, -3, 200, 15, 5};
  engine::ExecutionEngine E(sim::getMaxwellGTX980());
  sim::BufferId In = E.getDevice().alloc(ir::ScalarType::I32, Keys.size());
  E.getDevice().writeInts(In, Keys);
  HistogramResult R = App.run(E, In, Keys.size());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Bins, referenceHistogram(Keys, 16));
}

TEST(Histogram, PrivatizedRejectsOversizedBins) {
  Histogram App(64 * 1024, HistogramStrategy::SharedPrivatized);
  engine::ExecutionEngine E(sim::getKeplerK40c());
  sim::BufferId In = E.getDevice().alloc(ir::ScalarType::I32, 4);
  HistogramResult R = App.run(E, In, 4);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("shared memory"), std::string::npos);
}

TEST(Histogram, PrivatizationPaysOffOnNativeAtomicArchs) {
  // The Section II-A2 story on the histogram workload: privatized shared
  // bins beat global atomics once the shared-atomic hardware is native.
  const unsigned NumBins = 32; // Few bins -> heavy contention.
  const size_t N = 1 << 20;
  Histogram Global(NumBins, HistogramStrategy::GlobalAtomics);
  Histogram Shared(NumBins, HistogramStrategy::SharedPrivatized);

  engine::ExecutionEngine E(sim::getMaxwellGTX980());
  sim::VirtualPattern Pattern;
  Pattern.Modulus = NumBins;
  sim::BufferId In =
      E.getDevice().allocVirtual(ir::ScalarType::I32, N, Pattern);

  double TGlobal = Global.run(E, In, N, sim::ExecMode::Sampled).Seconds;
  double TShared = Shared.run(E, In, N, sim::ExecMode::Sampled).Seconds;
  EXPECT_LT(TShared, TGlobal);
}

//===----------------------------------------------------------------------===//
// Scan
//===----------------------------------------------------------------------===//

class ScanCorrectness
    : public ::testing::TestWithParam<std::tuple<ScanStrategy, size_t>> {};

TEST_P(ScanCorrectness, MatchesReference) {
  auto [Strategy, N] = GetParam();
  std::mt19937 Rng(23);
  std::uniform_int_distribution<int> Dist(-9, 9);
  std::vector<int> Data(N);
  for (int &V : Data)
    V = Dist(Rng);
  std::vector<long long> Expected = referenceInclusiveScan(Data);

  Scan App(Strategy);
  unsigned Count = 0;
  const sim::ArchDesc *Archs = sim::getAllArchs(Count);
  for (unsigned A = 0; A != Count; ++A) {
    engine::ExecutionEngine E(Archs[A]);
    sim::BufferId In = E.getDevice().alloc(ir::ScalarType::I32, N);
    sim::BufferId Out = E.getDevice().alloc(ir::ScalarType::I32, N);
    E.getDevice().writeInts(In, Data);
    ScanResult R = App.run(E, In, Out, N);
    ASSERT_TRUE(R.Ok) << Archs[A].Name << ": " << R.Error;
    for (size_t I = 0; I != N; ++I)
      ASSERT_EQ(E.getDevice().readInt(Out, I), Expected[I])
          << Archs[A].Name << " index " << I;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScanCorrectness,
    ::testing::Combine(::testing::Values(ScanStrategy::SharedKoggeStone,
                                         ScanStrategy::ShuffleKoggeStone),
                       ::testing::Values<size_t>(1, 31, 32, 33, 255, 256,
                                                 257, 5000, 70000)),
    [](const auto &Info) {
      std::string Name =
          std::get<0>(Info.param) == ScanStrategy::SharedKoggeStone
              ? "shared"
              : "shuffle";
      return Name + "_n" + std::to_string(std::get<1>(Info.param));
    });

TEST(Scan, MultiLevelLaunchCount) {
  Scan App(ScanStrategy::ShuffleKoggeStone, 256);
  const size_t N = 256 * 256 + 3; // Needs two levels + add pass.
  engine::ExecutionEngine E(sim::getPascalP100());
  sim::BufferId In = E.getDevice().alloc(ir::ScalarType::I32, N);
  sim::BufferId Out = E.getDevice().alloc(ir::ScalarType::I32, N);
  std::vector<int> Data(N, 1);
  E.getDevice().writeInts(In, Data);
  ScanResult R = App.run(E, In, Out, N);
  ASSERT_TRUE(R.Ok) << R.Error;
  // Level 0 scan + level 1 scan (+ level 2 for the ragged extra block) +
  // add passes.
  EXPECT_GE(R.KernelLaunches, 3u);
  EXPECT_EQ(E.getDevice().readInt(Out, N - 1), static_cast<long long>(N));
}

TEST(Scan, ShuffleVariantUsesNoDynamicSharedLadder) {
  // The shuffle flavor keeps the ladder in registers: its only shared
  // array is the 32-slot warp-sums staging buffer.
  Scan Shfl(ScanStrategy::ShuffleKoggeStone);
  Scan Shared(ScanStrategy::SharedKoggeStone);
  ASSERT_EQ(Shfl.getScanKernel().getSharedArrays().size(), 1u);
  ASSERT_EQ(Shared.getScanKernel().getSharedArrays().size(), 1u);
  // 32 slots vs blockDim slots.
  EXPECT_NE(Shfl.getScanKernel().getSharedArrays()[0]->Extent, nullptr);
}

TEST(Scan, ShuffleVariantFasterOnWideBlocks) {
  // Replacing the shared ladder (2 barriers x lg(B) steps) with register
  // shuffles must pay off on every architecture.
  const size_t N = 1 << 20;
  unsigned Count = 0;
  const sim::ArchDesc *Archs = sim::getAllArchs(Count);
  Scan Shfl(ScanStrategy::ShuffleKoggeStone, 256);
  Scan Shared(ScanStrategy::SharedKoggeStone, 256);
  for (unsigned A = 0; A != Count; ++A) {
    engine::ExecutionEngine E(Archs[A]);
    sim::VirtualPattern Pattern;
    sim::BufferId In =
        E.getDevice().allocVirtual(ir::ScalarType::I32, N, Pattern);
    sim::BufferId Out = E.getDevice().alloc(ir::ScalarType::I32, N);
    double TShfl = Shfl.run(E, In, Out, N, sim::ExecMode::Sampled).Seconds;
    double TShared =
        Shared.run(E, In, Out, N, sim::ExecMode::Sampled).Seconds;
    EXPECT_LT(TShfl, TShared) << Archs[A].Name;
  }
}

} // namespace
