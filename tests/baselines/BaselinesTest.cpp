//===- BaselinesTest.cpp - Comparison framework tests -----------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "baselines/CubReduce.h"
#include "baselines/KokkosReduce.h"
#include "baselines/OmpCpuReduce.h"

#include <gtest/gtest.h>

#include <random>

using namespace tangram;
using namespace tangram::baselines;

namespace {

std::vector<float> randomFloats(size_t N, unsigned Seed) {
  std::mt19937 Rng(Seed);
  std::uniform_real_distribution<float> Dist(-2.0f, 2.0f);
  std::vector<float> Data(N);
  for (float &V : Data)
    V = Dist(Rng);
  return Data;
}

double referenceSum(const std::vector<float> &Data) {
  double Sum = 0;
  for (float V : Data)
    Sum += V;
  return Sum;
}

class GpuBaselineCorrectness
    : public ::testing::TestWithParam<std::tuple<const char *, size_t>> {};

TEST_P(GpuBaselineCorrectness, MatchesReference) {
  auto [Which, N] = GetParam();
  std::unique_ptr<ReductionFramework> FW;
  if (std::string(Which) == "cub")
    FW = std::make_unique<CubReduce>();
  else
    FW = std::make_unique<KokkosReduce>();

  std::vector<float> Data = randomFloats(N, static_cast<unsigned>(N) + 3);
  double Expected = referenceSum(Data);

  unsigned Count = 0;
  const sim::ArchDesc *Archs = sim::getAllArchs(Count);
  for (unsigned A = 0; A != Count; ++A) {
    engine::ExecutionEngine E(Archs[A]);
    sim::BufferId In =
        E.getDevice().alloc(ir::ScalarType::F32, std::max<size_t>(N, 4));
    E.getDevice().writeFloats(In, Data);
    FrameworkResult R = FW->run(E, In, N, sim::ExecMode::Functional);
    ASSERT_TRUE(R.Ok) << Archs[A].Name << ": " << R.Error;
    EXPECT_NEAR(R.Value, Expected, std::abs(Expected) * 1e-4 + 1e-2)
        << Archs[A].Name << " N=" << N;
    EXPECT_GT(R.Seconds, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GpuBaselineCorrectness,
    ::testing::Combine(::testing::Values("cub", "kokkos"),
                       ::testing::Values<size_t>(1, 3, 4, 64, 100, 1024,
                                                 4097, 65536, 262144)),
    [](const auto &Info) {
      return std::string(std::get<0>(Info.param)) + "_n" +
             std::to_string(std::get<1>(Info.param));
    });

TEST(OmpCpuReduce, FunctionalCorrectness) {
  OmpCpuReduce Omp(2);
  engine::ExecutionEngine E(sim::getKeplerK40c());
  for (size_t N : {1u, 100u, 5000u, 100000u}) {
    std::vector<float> Data = randomFloats(N, 5);
    double Expected = referenceSum(Data);
    size_t Mark = E.deviceMark();
    sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, N);
    E.getDevice().writeFloats(In, Data);
    FrameworkResult R = Omp.run(E, In, N, sim::ExecMode::Functional);
    E.deviceRelease(Mark);
    ASSERT_TRUE(R.Ok);
    EXPECT_NEAR(R.Value, Expected, std::abs(Expected) * 1e-6 + 1e-3);
  }
}

TEST(OmpCpuReduce, ParallelMatchesSerial) {
  std::vector<float> Data = randomFloats(250000, 11);
  double Serial = OmpCpuReduce::parallelReduce(Data, 1);
  double Parallel = OmpCpuReduce::parallelReduce(Data, 4);
  EXPECT_NEAR(Serial, Parallel, std::abs(Serial) * 1e-9 + 1e-6);
}

TEST(OmpCpuReduce, ModelIsMonotonicInN) {
  Power8Model Model;
  double Prev = 0;
  for (size_t N : {64u, 1024u, 65536u, 1u << 20, 1u << 24}) {
    double T = Model.seconds(N);
    EXPECT_GT(T, Prev);
    Prev = T;
  }
}

TEST(OmpCpuReduce, SmallArraysBeatCub) {
  // The paper's observation: the OpenMP version is ~4x faster than CUB
  // below 65K elements (Section IV-C1).
  OmpCpuReduce Omp(2);
  CubReduce Cub;
  engine::ExecutionEngine E(sim::getPascalP100());
  for (size_t N : {64u, 1024u, 16384u}) {
    std::vector<float> Data = randomFloats(N, 1);
    size_t Mark = E.deviceMark();
    sim::BufferId In =
        E.getDevice().alloc(ir::ScalarType::F32, std::max<size_t>(N, 4));
    E.getDevice().writeFloats(In, Data);
    double CubT = Cub.run(E, In, N, sim::ExecMode::Functional).Seconds;
    double OmpT = Omp.run(E, In, N, sim::ExecMode::Functional).Seconds;
    E.deviceRelease(Mark);
    EXPECT_GT(CubT, 2.0 * OmpT) << "N=" << N;
  }
}

TEST(CubReduce, VectorizedLoadsDominateAtLargeN) {
  // At 16M+ elements CUB must be memory-bound on its vectorized stream.
  CubReduce Cub;
  const size_t N = 1u << 24;
  std::vector<float> Data(N, 0.5f);
  const sim::ArchDesc &Arch = sim::getKeplerK40c();
  engine::ExecutionEngine E(Arch);
  sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, N);
  E.getDevice().writeFloats(In, Data);
  FrameworkResult R = Cub.run(E, In, N, sim::ExecMode::Sampled);
  ASSERT_TRUE(R.Ok) << R.Error;
  double IdealSeconds =
      N * 4.0 / (Arch.DramBandwidthGBs * 1e9 * Arch.VectorLoadEfficiency);
  EXPECT_GT(R.Seconds, IdealSeconds * 0.9);
  EXPECT_LT(R.Seconds, IdealSeconds * 1.8);
}

TEST(KokkosReduce, StagedSchemeBeatsCubAtHugeN) {
  // Fig. 8-10: beyond ~10M elements Kokkos outperforms CUB, reaching
  // 2.2-2.7x at the largest sizes.
  CubReduce Cub;
  KokkosReduce Kokkos;
  const size_t N = 1u << 28;
  std::vector<float> Data(8, 0.0f); // Only pricing; sampled mode.
  Data.resize(8);
  unsigned Count = 0;
  const sim::ArchDesc *Archs = sim::getAllArchs(Count);
  for (unsigned A = 0; A != Count; ++A) {
    engine::ExecutionEngine E(Archs[A]);
    sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, N);
    std::vector<float> Full(N, 0.25f);
    E.getDevice().writeFloats(In, Full);
    double CubT = Cub.run(E, In, N, sim::ExecMode::Sampled).Seconds;
    double KokkosT = Kokkos.run(E, In, N, sim::ExecMode::Sampled).Seconds;
    double Ratio = CubT / KokkosT;
    EXPECT_GT(Ratio, 1.6) << Archs[A].Name;
    EXPECT_LT(Ratio, 3.5) << Archs[A].Name;
  }
}

} // namespace
