//===- CudaEmitterTest.cpp - CUDA emission tests ------------------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// Checks the generated CUDA against the features the paper's Listings 1-4
// exhibit: atomic instructions with scopes, warp shuffle intrinsics,
// extern shared arrays, scalar shared accumulators, and barriers.
//
//===----------------------------------------------------------------------===//

#include "codegen/CudaEmitter.h"

#include "tangram/Tangram.h"

#include <cctype>

#include <gtest/gtest.h>

using namespace tangram;
using namespace tangram::synth;

namespace {

TangramReduction &compiled() {
  static std::unique_ptr<TangramReduction> TR = [] {
    auto T = TangramReduction::create();
    EXPECT_TRUE(T.ok()) << T.status().toString();
    return std::move(*T);
  }();
  return *TR;
}

std::string cudaFor(const char *Label) {
  const VariantDescriptor *V =
      findByFigure6Label(compiled().getSearchSpace(), Label);
  EXPECT_NE(V, nullptr);
  auto Text = compiled().emitCudaFor(*V);
  EXPECT_TRUE(Text.ok()) << Text.status().toString();
  return Text ? *Text : std::string();
}

TEST(CudaEmitter, GlobalAtomicGridCombine) {
  // Every pruned version ends in a device-scope atomicAdd on the Return
  // accumulator (Listing 2 shape).
  for (const char *Label : {"a", "f", "l", "n", "p"}) {
    std::string Text = cudaFor(Label);
    EXPECT_NE(Text.find("atomicAdd(&Return[0], "), std::string::npos)
        << Label;
    EXPECT_NE(Text.find("__global__"), std::string::npos);
  }
}

TEST(CudaEmitter, SharedAtomicScalarForm) {
  // Fig. 3 accumulators print as scalar __shared__ variables, atomically
  // updated (Listing 3 line 27).
  std::string Text = cudaFor("n");
  EXPECT_NE(Text.find("__shared__ float tmp;"), std::string::npos);
  EXPECT_NE(Text.find("atomicAdd(&tmp, "), std::string::npos);
}

TEST(CudaEmitter, ShuffleIntrinsics) {
  std::string Text = cudaFor("m");
  EXPECT_NE(Text.find("__shfl_down(val, offset, 32)"), std::string::npos);
  // The elided array must not appear.
  EXPECT_EQ(Text.find("tmp["), std::string::npos);
  // The cross-warp staging array survives (Listing 4).
  EXPECT_NE(Text.find("partial["), std::string::npos);
}

TEST(CudaEmitter, TreeVariantUsesExternShared) {
  // The blockDim-sized tmp array is dynamically sized at launch
  // (Listing 3 line 9).
  std::string Text = cudaFor("l");
  EXPECT_NE(Text.find("extern __shared__ float tmp[];"), std::string::npos);
  EXPECT_NE(Text.find("__syncthreads();"), std::string::npos);
}

TEST(CudaEmitter, SyncShuffleSpelling) {
  const VariantDescriptor *V =
      findByFigure6Label(compiled().getSearchSpace(), "m");
  auto S = compiled().synthesize(*V);
  ASSERT_TRUE(S.ok()) << S.status().toString();
  codegen::CudaEmitOptions Options;
  Options.SyncShuffles = true;
  std::string Text = codegen::emitCuda(*(*S)->K, Options);
  EXPECT_NE(Text.find("__shfl_down_sync(0xffffffff, val, offset, 32)"),
            std::string::npos);
}

TEST(CudaEmitter, HostWrapperShape) {
  std::string Text = cudaFor("p"); // emitCudaFor enables the wrapper.
  EXPECT_NE(Text.find("cudaMalloc(&Return, sizeof(float));"),
            std::string::npos);
  EXPECT_NE(Text.find("<<<"), std::string::npos);
  EXPECT_NE(Text.find("cudaMemcpyDeviceToHost"), std::string::npos);
}

TEST(CudaEmitter, MaxReductionSpellsAtomicMax) {
  TangramReduction::Options Opts;
  Opts.Op = ReduceOp::Max;
  Opts.Elem = ir::ScalarType::I32;
  auto TR = TangramReduction::create(Opts);
  ASSERT_TRUE(TR.ok()) << TR.status().toString();
  const VariantDescriptor *V =
      findByFigure6Label((*TR)->getSearchSpace(), "n");
  std::string Text = *(*TR)->emitCudaFor(*V);
  EXPECT_NE(Text.find("atomicMax(&tmp, "), std::string::npos);
  EXPECT_NE(Text.find("atomicMax(&Return[0], "), std::string::npos);
  // Max identity, not zero.
  EXPECT_NE(Text.find("-2147483648"), std::string::npos);
}

TEST(CudaEmitter, SerialStageEmitsCoarsenLoop) {
  std::string Text = cudaFor("a");
  EXPECT_NE(Text.find("for (int i = 0;"), std::string::npos);
  EXPECT_NE(Text.find("ObjectSize / blockDim.x"), std::string::npos);
}

TEST(CudaEmitter, StridedGridUsesGridDim) {
  std::string Text = cudaFor("k");
  EXPECT_NE(Text.find("gridDim.x"), std::string::npos);
}

TEST(CudaEmitter, EmitsEveryPrunedVariantNonEmpty) {
  for (const VariantDescriptor &V : compiled().getSearchSpace().Pruned) {
    auto Cuda = compiled().emitCudaFor(V);
    ASSERT_TRUE(Cuda.ok()) << V.getName() << ": "
                           << Cuda.status().toString();
    std::string Text = *Cuda;
    EXPECT_FALSE(Text.empty()) << V.getName();
    EXPECT_NE(Text.find("__global__"), std::string::npos) << V.getName();
    // Identifier-safe kernel names (variant names contain '/' and '+').
    size_t NamePos = Text.find("void ");
    ASSERT_NE(NamePos, std::string::npos);
    size_t ParenPos = Text.find('(', NamePos);
    std::string KernelName =
        Text.substr(NamePos + 5, ParenPos - NamePos - 5);
    for (char C : KernelName)
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(C)) || C == '_')
          << V.getName() << " -> " << KernelName;
  }
}

TEST(CudaEmitter, FloatLiteralsAreValidCuda) {
  std::string Text = cudaFor("l");
  EXPECT_EQ(Text.find(" 0f"), std::string::npos);
  EXPECT_NE(Text.find("0.0f"), std::string::npos);
}

} // namespace
