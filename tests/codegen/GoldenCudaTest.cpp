//===- GoldenCudaTest.cpp - Exact generated-CUDA regression test --------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// Locks the exact CUDA text generated for the paper's flagship version
// (p) — Fig. 3(b) lowered with the shuffle rewrite and atomic combines
// (the Listing 3+4 composition). Any codegen change that alters this text
// must be a conscious decision.
//
//===----------------------------------------------------------------------===//

#include "codegen/CudaEmitter.h"
#include "tangram/Tangram.h"

#include <gtest/gtest.h>

using namespace tangram;
using namespace tangram::synth;

namespace {

const char *ExpectedVariantP = R"(__global__
void Reduce_Block_DTA_VA2_S(float *Return, float *input_x, int SourceSize, int ObjectSize) {
  __shared__ float partial;
  if ((threadIdx.x == 0u)) {
    partial = 0.0f;
  }
  __syncthreads();
  float val = 0.0f;
  val = ((threadIdx.x < ObjectSize) ? ((((blockIdx.x * ObjectSize) + threadIdx.x) < SourceSize) ? input_x[((blockIdx.x * ObjectSize) + threadIdx.x)] : 0.0f) : 0.0f);
  for (int offset = (32u / 2); (offset > 0); offset = (offset / 2)) {
    val = (val + __shfl_down(val, offset, 32));
  }
  if (((ObjectSize != 32u) && ((ObjectSize / 32u) > 0))) {
    if (((threadIdx.x % warpSize) == 0)) {
      atomicAdd(&partial, val);
    }
    __syncthreads();
    if (((threadIdx.x / warpSize) == 0)) {
      val = partial;
    }
  }
  __syncthreads();
  if ((threadIdx.x == 0u)) {
    atomicAdd(&Return[0], val);
  }
}
)";

TEST(GoldenCuda, VariantPMatchesExactly) {
  auto TR = TangramReduction::create();
  ASSERT_TRUE(TR.ok()) << TR.status().toString();
  const VariantDescriptor *P =
      findByFigure6Label((*TR)->getSearchSpace(), "p");
  ASSERT_NE(P, nullptr);
  auto S = (*TR)->synthesize(*P);
  ASSERT_TRUE(S.ok()) << S.status().toString();
  std::string Text = codegen::emitCuda(*(*S)->K);
  EXPECT_EQ(Text, ExpectedVariantP);
}

TEST(GoldenCuda, EmissionIsDeterministic) {
  auto TR = TangramReduction::create();
  ASSERT_TRUE(TR.ok()) << TR.status().toString();
  for (const char *Label : {"a", "k", "m", "n"}) {
    const VariantDescriptor *V =
        findByFigure6Label((*TR)->getSearchSpace(), Label);
    auto First = (*TR)->emitCudaFor(*V);
    auto Second = (*TR)->emitCudaFor(*V);
    ASSERT_TRUE(First.ok() && Second.ok()) << Label;
    EXPECT_EQ(*First, *Second) << Label;
    EXPECT_FALSE(First->empty()) << Label;
  }
}

} // namespace
