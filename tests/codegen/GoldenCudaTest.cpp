//===- GoldenCudaTest.cpp - Exact generated-CUDA regression test --------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// Locks the exact CUDA text generated for the paper's flagship version
// (p) — Fig. 3(b) lowered with the shuffle rewrite and atomic combines
// (the Listing 3+4 composition). Any codegen change that alters this text
// must be a conscious decision.
//
//===----------------------------------------------------------------------===//

#include "codegen/CudaEmitter.h"
#include "tangram/Tangram.h"

#include <gtest/gtest.h>

using namespace tangram;
using namespace tangram::synth;

namespace {

const char *ExpectedVariantP = R"(__global__
void Reduce_Block_DTA_VA2_S(float *Return, float *input_x, int SourceSize, int ObjectSize) {
  __shared__ float partial;
  if ((threadIdx.x == 0u)) {
    partial = 0.0f;
  }
  __syncthreads();
  float val = 0.0f;
  val = ((threadIdx.x < ObjectSize) ? ((((blockIdx.x * ObjectSize) + threadIdx.x) < SourceSize) ? input_x[((blockIdx.x * ObjectSize) + threadIdx.x)] : 0.0f) : 0.0f);
  for (int offset = (32u / 2); (offset > 0); offset = (offset / 2)) {
    val = (val + __shfl_down(val, offset, 32));
  }
  if (((ObjectSize != 32u) && ((ObjectSize / 32u) > 0))) {
    if (((threadIdx.x % warpSize) == 0)) {
      atomicAdd(&partial, val);
    }
    __syncthreads();
    if (((threadIdx.x / warpSize) == 0)) {
      val = partial;
    }
  }
  __syncthreads();
  if ((threadIdx.x == 0u)) {
    atomicAdd(&Return[0], val);
  }
}
)";

TEST(GoldenCuda, VariantPMatchesExactly) {
  std::string Error;
  auto TR = TangramReduction::create({}, Error);
  ASSERT_NE(TR, nullptr) << Error;
  const VariantDescriptor *P =
      findByFigure6Label(TR->getSearchSpace(), "p");
  ASSERT_NE(P, nullptr);
  auto S = TR->synthesize(*P, Error);
  ASSERT_NE(S, nullptr) << Error;
  std::string Text = codegen::emitCuda(*S->K);
  EXPECT_EQ(Text, ExpectedVariantP);
}

TEST(GoldenCuda, EmissionIsDeterministic) {
  std::string Error;
  auto TR = TangramReduction::create({}, Error);
  ASSERT_NE(TR, nullptr) << Error;
  for (const char *Label : {"a", "k", "m", "n"}) {
    const VariantDescriptor *V =
        findByFigure6Label(TR->getSearchSpace(), Label);
    std::string First = TR->emitCudaFor(*V, Error);
    std::string Second = TR->emitCudaFor(*V, Error);
    EXPECT_EQ(First, Second) << Label;
    EXPECT_FALSE(First.empty()) << Label;
  }
}

} // namespace
