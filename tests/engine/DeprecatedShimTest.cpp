//===- DeprecatedShimTest.cpp - Legacy positional overloads still work ------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// The deprecated positional overloads are shims over the request API and
// must keep answering identically until they are removed. This file is the
// one place in the tree allowed to call them — everything else goes
// through ReduceRequest/DiagnoseRequest.
//
//===----------------------------------------------------------------------===//

#include "tangram/DynamicSelector.h"
#include "tangram/Tangram.h"

#include <gtest/gtest.h>

#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

using namespace tangram;
using namespace tangram::synth;

namespace {

TangramReduction &facade() {
  static std::unique_ptr<TangramReduction> TR = [] {
    auto T = TangramReduction::create();
    EXPECT_TRUE(T.ok()) << T.status().toString();
    return std::move(*T);
  }();
  return *TR;
}

TEST(DeprecatedShims, PositionalReduceMatchesRequestRun) {
  engine::ExecutionEngine &E = facade().engineFor(sim::getPascalP100());
  const VariantDescriptor &V = facade().getSearchSpace().Pruned.front();
  const size_t N = 2048;
  std::vector<float> Data(N, 0.5f);

  size_t Mark = E.deviceMark();
  sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, N);
  E.getDevice().writeFloats(In, Data);
  auto Old = E.reduce(V, In, N);
  auto New = E.run(engine::ReduceRequest{.Desc = V, .In = In, .N = N});
  E.deviceRelease(Mark);

  ASSERT_TRUE(Old.ok()) << Old.status().toString();
  ASSERT_TRUE(New.ok()) << New.status().toString();
  EXPECT_EQ(Old->FloatValue, New->FloatValue);
  EXPECT_EQ(Old->Seconds, New->Seconds);
}

TEST(DeprecatedShims, PositionalRunReductionMatchesRequestRun) {
  engine::ExecutionEngine &E = facade().engineFor(sim::getPascalP100());
  auto S = E.getVariant(facade().getSearchSpace().Pruned.front());
  ASSERT_TRUE(S.ok()) << S.status().toString();
  const size_t N = 1024;
  size_t Mark = E.deviceMark();
  sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, N);
  E.getDevice().writeFloats(In, std::vector<float>(N, 2.0f));
  auto Old = E.runReduction(**S, In, N);
  auto New = E.run(engine::ReduceRequest{.In = In, .N = N}, **S);
  E.deviceRelease(Mark);
  ASSERT_TRUE(Old.ok() && New.ok());
  EXPECT_EQ(Old->FloatValue, New->FloatValue);
}

TEST(DeprecatedShims, PositionalDiagnosticsMatchDiagnose) {
  const VariantDescriptor &V = facade().getSearchSpace().Pruned.front();
  const sim::ArchDesc &Arch = sim::getPascalP100();
  engine::ExecutionEngine &E = facade().engineFor(Arch);

  auto OldRace = facade().raceCheck(V, Arch, 2048);
  engine::DiagnoseRequest DR;
  DR.Kind = engine::DiagnoseKind::Race;
  DR.Desc = V;
  DR.N = 2048;
  auto NewRace = facade().diagnose(Arch, DR);
  ASSERT_TRUE(OldRace.ok() && NewRace.ok());
  EXPECT_EQ(OldRace->clean(), NewRace->Race.clean());
  EXPECT_EQ(OldRace->LaunchCount, NewRace->Race.LaunchCount);

  sim::FaultPlan Plan;
  Plan.Kind = sim::FaultKind::DropAtomic;
  Plan.Seed = 5;
  Plan.Period = 4;
  auto OldFault = facade().faultCheck(V, Arch, 2048, Plan);
  DR.Kind = engine::DiagnoseKind::Fault;
  DR.Plan = Plan;
  auto NewFault = facade().diagnose(Arch, DR);
  ASSERT_TRUE(OldFault.ok() && NewFault.ok());
  EXPECT_EQ(OldFault->Outcome, NewFault->Fault.Outcome);
  EXPECT_EQ(OldFault->GotFloat, NewFault->Fault.GotFloat);

  EXPECT_TRUE(E.validateVariant(V, 1024).ok());
}

TEST(DeprecatedShims, PositionalSelectorReduceStillAnswers) {
  DynamicSelector Selector(facade());
  engine::ExecutionEngine &E = facade().engineFor(sim::getMaxwellGTX980());
  const size_t N = 1024;
  size_t Mark = E.deviceMark();
  sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, N);
  E.getDevice().writeFloats(In, std::vector<float>(N, 1.0f));
  auto Out = Selector.reduce(E, In, N);
  E.deviceRelease(Mark);
  ASSERT_TRUE(Out.ok()) << Out.status().toString();
  EXPECT_EQ(Out->FloatValue, static_cast<double>(N));
}

} // namespace
