//===- ExecutionEngineTest.cpp - Engine, cache, and determinism tests ---------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// The tentpole guarantees of the execution layer: each variant identity is
// compiled at most once (cache hit/miss accounting), entries never leak
// across architectures or optimization-flag sets, LRU eviction is bounded,
// and block-parallel simulation is bit-identical to a 1-thread run in both
// functional results and modeled cycle totals.
//
//===----------------------------------------------------------------------===//

#include "engine/ExecutionEngine.h"
#include "tangram/Tangram.h"

#include <gtest/gtest.h>

using namespace tangram;
using namespace tangram::synth;

namespace {

std::unique_ptr<TangramReduction>
makeFacade(const TangramReduction::Options &Opts = {}) {
  std::string Error;
  auto TR = TangramReduction::create(Opts, Error);
  EXPECT_NE(TR, nullptr) << Error;
  return TR;
}

VariantDescriptor labeled(const TangramReduction &TR, const char *Label) {
  const VariantDescriptor *V = findByFigure6Label(TR.getSearchSpace(), Label);
  EXPECT_NE(V, nullptr) << Label;
  VariantDescriptor D = *V;
  D.BlockSize = 128;
  D.Coarsen = D.BlockDistributes ? 4 : 1;
  return D;
}

TEST(VariantCache, CompileOnceOnCacheHit) {
  auto TR = makeFacade();
  engine::ExecutionEngine &E = TR->engineFor(sim::getKeplerK40c());
  VariantDescriptor D = labeled(*TR, "a");

  std::string Error;
  auto First = E.getVariant(D, Error);
  ASSERT_NE(First, nullptr) << Error;
  auto Second = E.getVariant(D, Error);
  ASSERT_NE(Second, nullptr) << Error;

  EXPECT_EQ(First.get(), Second.get());
  engine::CacheStats S = E.getCacheStats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_EQ(S.Evictions, 0u);
}

TEST(VariantCache, CrossArchKeyingNeverShares) {
  auto TR = makeFacade();
  engine::ExecutionEngine &Kepler = TR->engineFor(sim::getKeplerK40c());
  engine::ExecutionEngine &Maxwell = TR->engineFor(sim::getMaxwellGTX980());
  // The per-arch engines share one cache...
  ASSERT_EQ(Kepler.getCachePtr().get(), Maxwell.getCachePtr().get());

  VariantDescriptor D = labeled(*TR, "m");
  std::string Error;
  auto OnKepler = Kepler.getVariant(D, Error);
  ASSERT_NE(OnKepler, nullptr) << Error;
  auto OnMaxwell = Maxwell.getVariant(D, Error);
  ASSERT_NE(OnMaxwell, nullptr) << Error;

  // ...but the generation field keys their entries apart: the same
  // descriptor synthesizes twice, never hitting the other arch's artifact.
  EXPECT_NE(OnKepler.get(), OnMaxwell.get());
  engine::CacheStats S = Kepler.getCacheStats();
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.Entries, 2u);
}

TEST(VariantCache, OptimizationFlagsAreKeyed) {
  auto TR = makeFacade();
  engine::ExecutionEngine &E = TR->engineFor(sim::getPascalP100());
  VariantDescriptor D = labeled(*TR, "n");

  std::string Error;
  OptimizationFlags Agg;
  Agg.AggregateAtomics = true;
  auto Plain = E.getVariant(D, Error);
  ASSERT_NE(Plain, nullptr) << Error;
  auto Aggregated = E.getVariant(D, Error, Agg);
  ASSERT_NE(Aggregated, nullptr) << Error;

  EXPECT_NE(Plain.get(), Aggregated.get());
  engine::CacheStats S = E.getCacheStats();
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_EQ(S.Entries, 2u);
}

TEST(VariantCache, LruEvictionIsBounded) {
  TangramReduction::Options Opts;
  Opts.VariantCacheCapacity = 2;
  auto TR = makeFacade(Opts);
  engine::ExecutionEngine &E = TR->engineFor(sim::getKeplerK40c());

  std::string Error;
  ASSERT_NE(E.getVariant(labeled(*TR, "a"), Error), nullptr) << Error;
  ASSERT_NE(E.getVariant(labeled(*TR, "l"), Error), nullptr) << Error;
  ASSERT_NE(E.getVariant(labeled(*TR, "m"), Error), nullptr) << Error;

  engine::CacheStats S = E.getCacheStats();
  EXPECT_EQ(S.Entries, 2u);
  EXPECT_EQ(S.Evictions, 1u);

  // The least recently used entry ("a") is gone: requesting it again is a
  // fourth miss, not a hit.
  ASSERT_NE(E.getVariant(labeled(*TR, "a"), Error), nullptr) << Error;
  EXPECT_EQ(E.getCacheStats().Misses, 4u);
}

TEST(ExecutionEngine, GetVariantRequiresCompiler) {
  engine::ExecutionEngine E(sim::getKeplerK40c());
  ASSERT_FALSE(E.hasCompiler());
  VariantDescriptor D;
  std::string Error;
  EXPECT_EQ(E.getVariant(D, Error), nullptr);
  EXPECT_FALSE(Error.empty());
}

TEST(ExecutionEngine, DeterminismAcrossThreadCounts) {
  // The paper's Fig. 6 portfolio, run block-parallel, must be bit-identical
  // to the sequential interpretation: same functional sums AND same modeled
  // warp-cycle totals, on every architecture.
  TangramReduction::Options Seq;
  Seq.EngineThreads = 1;
  TangramReduction::Options Par;
  Par.EngineThreads = 4;
  auto TRSeq = makeFacade(Seq);
  auto TRPar = makeFacade(Par);

  const size_t N = 4096 + 17;
  std::vector<float> Data(N);
  for (size_t I = 0; I != N; ++I)
    Data[I] = 0.25f * static_cast<float>((I % 9) + 1);

  unsigned Count = 0;
  const sim::ArchDesc *Archs = sim::getAllArchs(Count);
  for (unsigned A = 0; A != Count; ++A) {
    engine::ExecutionEngine &ESeq = TRSeq->engineFor(Archs[A]);
    engine::ExecutionEngine &EPar = TRPar->engineFor(Archs[A]);
    EXPECT_EQ(ESeq.getThreadCount(), 1u);
    EXPECT_EQ(EPar.getThreadCount(), 4u);

    for (const VariantDescriptor &Base : TRSeq->getSearchSpace().Pruned) {
      if (Base.getFigure6Label().empty())
        continue;
      VariantDescriptor D = Base;
      D.BlockSize = 128;
      D.Coarsen = D.BlockDistributes ? 4 : 1;

      size_t MarkSeq = ESeq.deviceMark();
      sim::BufferId InSeq = ESeq.getDevice().alloc(ir::ScalarType::F32, N);
      ESeq.getDevice().writeFloats(InSeq, Data);
      engine::RunOutcome OutSeq = ESeq.reduce(D, InSeq, N);
      ESeq.deviceRelease(MarkSeq);

      size_t MarkPar = EPar.deviceMark();
      sim::BufferId InPar = EPar.getDevice().alloc(ir::ScalarType::F32, N);
      EPar.getDevice().writeFloats(InPar, Data);
      engine::RunOutcome OutPar = EPar.reduce(D, InPar, N);
      EPar.deviceRelease(MarkPar);

      ASSERT_TRUE(OutSeq.Ok) << D.getName() << ": " << OutSeq.Error;
      ASSERT_TRUE(OutPar.Ok) << D.getName() << ": " << OutPar.Error;
      // Bitwise equality, not EXPECT_NEAR: the merge order is block-index
      // deterministic, so even float rounding must agree exactly.
      EXPECT_EQ(OutSeq.FloatValue, OutPar.FloatValue)
          << Archs[A].Name << " " << D.getName();
      EXPECT_EQ(OutSeq.Launch.Stats.WarpCycles, OutPar.Launch.Stats.WarpCycles)
          << Archs[A].Name << " " << D.getName();
      EXPECT_EQ(OutSeq.Seconds, OutPar.Seconds)
          << Archs[A].Name << " " << D.getName();
    }
  }
}

TEST(ExecutionEngine, SharedPoolAcrossEnginesKeepsOneThreadSet) {
  TangramReduction::Options Opts;
  Opts.EngineThreads = 2;
  auto TR = makeFacade(Opts);
  engine::ExecutionEngine &A = TR->engineFor(sim::getKeplerK40c());
  engine::ExecutionEngine &B = TR->engineFor(sim::getPascalP100());
  EXPECT_EQ(&A.getThreadPool(), &B.getThreadPool());
  EXPECT_EQ(A.getThreadCount(), 2u);
}

} // namespace
