//===- ExecutionEngineTest.cpp - Engine, cache, and determinism tests ---------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// The tentpole guarantees of the execution layer: each variant identity is
// compiled at most once (cache hit/miss accounting), entries never leak
// across architectures or optimization-flag sets, LRU eviction is bounded,
// and block-parallel simulation is bit-identical to a 1-thread run in both
// functional results and modeled cycle totals.
//
//===----------------------------------------------------------------------===//

#include "engine/ExecutionEngine.h"
#include "tangram/Tangram.h"

#include <gtest/gtest.h>

using namespace tangram;
using namespace tangram::synth;

namespace {

std::unique_ptr<TangramReduction>
makeFacade(const TangramReduction::Options &Opts = {}) {
  auto TR = TangramReduction::create(Opts);
  EXPECT_TRUE(TR.ok()) << TR.status().toString();
  return TR ? std::move(*TR) : nullptr;
}

VariantDescriptor labeled(const TangramReduction &TR, const char *Label) {
  const VariantDescriptor *V = findByFigure6Label(TR.getSearchSpace(), Label);
  EXPECT_NE(V, nullptr) << Label;
  VariantDescriptor D = *V;
  D.BlockSize = 128;
  D.Coarsen = D.BlockDistributes ? 4 : 1;
  return D;
}

TEST(VariantCache, CompileOnceOnCacheHit) {
  auto TR = makeFacade();
  engine::ExecutionEngine &E = TR->engineFor(sim::getKeplerK40c());
  VariantDescriptor D = labeled(*TR, "a");

  auto First = E.getVariant(D);
  ASSERT_TRUE(First.ok()) << First.status().toString();
  auto Second = E.getVariant(D);
  ASSERT_TRUE(Second.ok()) << Second.status().toString();

  EXPECT_EQ(First->get(), Second->get());
  engine::CacheStats S = E.getCacheStats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_EQ(S.Evictions, 0u);
}

TEST(VariantCache, CrossArchKeyingNeverShares) {
  auto TR = makeFacade();
  engine::ExecutionEngine &Kepler = TR->engineFor(sim::getKeplerK40c());
  engine::ExecutionEngine &Maxwell = TR->engineFor(sim::getMaxwellGTX980());
  // The per-arch engines share one cache...
  ASSERT_EQ(Kepler.getCachePtr().get(), Maxwell.getCachePtr().get());

  VariantDescriptor D = labeled(*TR, "m");
  auto OnKepler = Kepler.getVariant(D);
  ASSERT_TRUE(OnKepler.ok()) << OnKepler.status().toString();
  auto OnMaxwell = Maxwell.getVariant(D);
  ASSERT_TRUE(OnMaxwell.ok()) << OnMaxwell.status().toString();

  // ...but the generation field keys their entries apart: the same
  // descriptor synthesizes twice, never hitting the other arch's artifact.
  EXPECT_NE(OnKepler->get(), OnMaxwell->get());
  engine::CacheStats S = Kepler.getCacheStats();
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.Entries, 2u);
}

TEST(VariantCache, OptimizationFlagsAreKeyed) {
  auto TR = makeFacade();
  engine::ExecutionEngine &E = TR->engineFor(sim::getPascalP100());
  VariantDescriptor D = labeled(*TR, "n");

  OptimizationFlags Agg;
  Agg.AggregateAtomics = true;
  auto Plain = E.getVariant(D);
  ASSERT_TRUE(Plain.ok()) << Plain.status().toString();
  auto Aggregated = E.getVariant(D, Agg);
  ASSERT_TRUE(Aggregated.ok()) << Aggregated.status().toString();

  EXPECT_NE(Plain->get(), Aggregated->get());
  engine::CacheStats S = E.getCacheStats();
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_EQ(S.Entries, 2u);
}

TEST(VariantCache, LruEvictionIsBounded) {
  TangramReduction::Options Opts;
  Opts.Engine.CacheCapacity = 2;
  auto TR = makeFacade(Opts);
  engine::ExecutionEngine &E = TR->engineFor(sim::getKeplerK40c());

  ASSERT_TRUE(E.getVariant(labeled(*TR, "a")).ok());
  ASSERT_TRUE(E.getVariant(labeled(*TR, "l")).ok());
  ASSERT_TRUE(E.getVariant(labeled(*TR, "m")).ok());

  engine::CacheStats S = E.getCacheStats();
  EXPECT_EQ(S.Entries, 2u);
  EXPECT_EQ(S.Evictions, 1u);

  // The least recently used entry ("a") is gone: requesting it again is a
  // fourth miss, not a hit.
  ASSERT_TRUE(E.getVariant(labeled(*TR, "a")).ok());
  EXPECT_EQ(E.getCacheStats().Misses, 4u);
}

TEST(ExecutionEngine, GetVariantRequiresCompiler) {
  engine::ExecutionEngine E(sim::getKeplerK40c());
  ASSERT_FALSE(E.hasCompiler());
  VariantDescriptor D;
  auto V = E.getVariant(D);
  ASSERT_FALSE(V.ok());
  EXPECT_EQ(V.code(), support::StatusCode::InvalidArgument);
  EXPECT_FALSE(V.status().Message.empty());
}

TEST(ExecutionEngine, DeterminismAcrossThreadCounts) {
  // The paper's Fig. 6 portfolio, run block-parallel, must be bit-identical
  // to the sequential interpretation: same functional sums AND same modeled
  // warp-cycle totals, on every architecture.
  TangramReduction::Options Seq;
  Seq.Engine.ThreadCount = 1;
  TangramReduction::Options Par;
  Par.Engine.ThreadCount = 4;
  auto TRSeq = makeFacade(Seq);
  auto TRPar = makeFacade(Par);

  const size_t N = 4096 + 17;
  std::vector<float> Data(N);
  for (size_t I = 0; I != N; ++I)
    Data[I] = 0.25f * static_cast<float>((I % 9) + 1);

  unsigned Count = 0;
  const sim::ArchDesc *Archs = sim::getAllArchs(Count);
  for (unsigned A = 0; A != Count; ++A) {
    engine::ExecutionEngine &ESeq = TRSeq->engineFor(Archs[A]);
    engine::ExecutionEngine &EPar = TRPar->engineFor(Archs[A]);
    EXPECT_EQ(ESeq.getThreadCount(), 1u);
    EXPECT_EQ(EPar.getThreadCount(), 4u);

    for (const VariantDescriptor &Base : TRSeq->getSearchSpace().Pruned) {
      if (Base.getFigure6Label().empty())
        continue;
      VariantDescriptor D = Base;
      D.BlockSize = 128;
      D.Coarsen = D.BlockDistributes ? 4 : 1;

      size_t MarkSeq = ESeq.deviceMark();
      sim::BufferId InSeq = ESeq.getDevice().alloc(ir::ScalarType::F32, N);
      ESeq.getDevice().writeFloats(InSeq, Data);
      auto OutSeq =
          ESeq.run(engine::ReduceRequest{.Desc = D, .In = InSeq, .N = N});
      ESeq.deviceRelease(MarkSeq);

      size_t MarkPar = EPar.deviceMark();
      sim::BufferId InPar = EPar.getDevice().alloc(ir::ScalarType::F32, N);
      EPar.getDevice().writeFloats(InPar, Data);
      auto OutPar =
          EPar.run(engine::ReduceRequest{.Desc = D, .In = InPar, .N = N});
      EPar.deviceRelease(MarkPar);

      ASSERT_TRUE(OutSeq.ok())
          << D.getName() << ": " << OutSeq.status().toString();
      ASSERT_TRUE(OutPar.ok())
          << D.getName() << ": " << OutPar.status().toString();
      // Bitwise equality, not EXPECT_NEAR: the merge order is block-index
      // deterministic, so even float rounding must agree exactly.
      EXPECT_EQ(OutSeq->FloatValue, OutPar->FloatValue)
          << Archs[A].Name << " " << D.getName();
      EXPECT_EQ(OutSeq->Launch.Stats.WarpCycles,
                OutPar->Launch.Stats.WarpCycles)
          << Archs[A].Name << " " << D.getName();
      EXPECT_EQ(OutSeq->Seconds, OutPar->Seconds)
          << Archs[A].Name << " " << D.getName();
    }
  }
}

TEST(ExecutionEngine, SharedPoolAcrossEnginesKeepsOneThreadSet) {
  TangramReduction::Options Opts;
  Opts.Engine.ThreadCount = 2;
  auto TR = makeFacade(Opts);
  engine::ExecutionEngine &A = TR->engineFor(sim::getKeplerK40c());
  engine::ExecutionEngine &B = TR->engineFor(sim::getPascalP100());
  EXPECT_EQ(&A.getThreadPool(), &B.getThreadPool());
  EXPECT_EQ(A.getThreadCount(), 2u);
}

} // namespace
