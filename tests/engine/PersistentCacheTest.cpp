//===- PersistentCacheTest.cpp - Disk tier and tuned-pack guarantees --------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// The persistence guarantees of the two-tier VariantCache and the
// tuned-variant pack format:
//   - cross-process reuse: a fresh cache over a populated directory serves
//     every {op, element type, backend} combination from disk with
//     VariantsCompiled == 0, reconstructing bit-identical bytecode that
//     produces identical reduction results;
//   - a corrupted artifact is a silent miss (dropped, recompiled, and
//     republished), never an error and never a wrong answer;
//   - an artifact whose embedded key contradicts the key that addressed it
//     is a hard integrity failure, never downgraded to a recompile;
//   - export -> import round-trips a tuned winner bit-identically and
//     warm-starts an engine that never compiles, with the pack's
//     quarantine verdicts applied.
//
//===----------------------------------------------------------------------===//

#include "engine/DiskCache.h"
#include "engine/ExecutionEngine.h"
#include "engine/TunedPack.h"
#include "tangram/Tangram.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace tangram;
using namespace tangram::synth;

namespace {

namespace fs = std::filesystem;

/// A unique scratch directory per test, removed on scope exit.
class TempDir {
public:
  explicit TempDir(const char *Tag) {
    Path = fs::temp_directory_path() /
           ("tgr_persistent_cache_" + std::string(Tag) + "_" +
            std::to_string(::getpid()));
    std::error_code EC;
    fs::remove_all(Path, EC);
    fs::create_directories(Path);
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }
  fs::path Path;
};

std::unique_ptr<TangramReduction>
makeFacade(ReduceOp Op, ir::ScalarType Elem, const std::string &CacheDir,
           std::vector<std::string> Packs = {}) {
  TangramReduction::Options Opts;
  Opts.Op = Op;
  Opts.Elem = Elem;
  Opts.Engine.CachePath = CacheDir;
  Opts.Engine.ImportPacks = std::move(Packs);
  auto TR = TangramReduction::create(Opts);
  EXPECT_TRUE(TR.ok()) << TR.status().toString();
  return TR ? std::move(*TR) : nullptr;
}

/// First pruned descriptor that resolves on \p B (native lowering rejects
/// bytecode outside the typed subset, so the sweep skips SynthesisError).
VariantDescriptor pickDescriptor(TangramReduction &TR,
                                 engine::ExecutionEngine &E,
                                 engine::Backend B) {
  for (const VariantDescriptor &D : TR.getSearchSpace().Pruned) {
    auto V = E.getVariant(D, {}, B);
    if (V.ok())
      return D;
    EXPECT_EQ(V.code(), support::StatusCode::SynthesisError)
        << V.status().toString();
  }
  ADD_FAILURE() << "no pruned descriptor resolves on "
                << engine::getBackendName(B);
  return {};
}

engine::ReduceResult runOnce(engine::ExecutionEngine &E,
                             const VariantDescriptor &D, ir::ScalarType Elem,
                             engine::Backend B, size_t N) {
  size_t Mark = E.deviceMark();
  sim::BufferId In = E.getDevice().alloc(Elem, N);
  if (Elem == ir::ScalarType::F32) {
    std::vector<float> Data(N);
    for (size_t I = 0; I != N; ++I)
      Data[I] = 0.5f * static_cast<float>((I * 13 + 7) % 257);
    E.getDevice().writeFloats(In, Data);
  } else {
    std::vector<int> Data(N);
    for (size_t I = 0; I != N; ++I)
      Data[I] = static_cast<int>((I * 13 + 7) % 257) - 128;
    E.getDevice().writeInts(In, Data);
  }
  engine::ReduceRequest Req;
  Req.Desc = D;
  Req.In = In;
  Req.N = N;
  Req.BackendKind = B;
  auto Out = E.run(Req);
  EXPECT_TRUE(Out.ok()) << Out.status().toString();
  E.deviceRelease(Mark);
  return Out.ok() ? *Out : engine::ReduceResult{};
}

/// Bytecode digests of a variant and (when present) its second stage.
std::pair<uint64_t, uint64_t>
bytecodeHashes(const synth::SynthesizedVariant &V) {
  return {ir::stableHash(V.Compiled),
          V.SecondStage ? ir::stableHash(V.SecondStage->Compiled) : 0};
}

} // namespace

TEST(PersistentCache, CrossProcessDiskReuseMatrix) {
  const ReduceOp Ops[] = {ReduceOp::Add, ReduceOp::ArgMax};
  const ir::ScalarType Elems[] = {ir::ScalarType::F32, ir::ScalarType::I64};
  const engine::Backend Backends[] = {engine::Backend::Simulator,
                                      engine::Backend::NativeCpu};
  const size_t N = 1024 + 39;

  for (ReduceOp Op : Ops)
    for (ir::ScalarType Elem : Elems)
      for (engine::Backend B : Backends) {
        SCOPED_TRACE(std::string(getReduceOpName(Op)) + "/" +
                     ir::getScalarTypeName(Elem) + "/" +
                     engine::getBackendName(B));
        TempDir Dir("matrix");

        // "Process" A: compile into a fresh directory.
        uint64_t HashA, SecondA;
        engine::ReduceResult ResA;
        VariantDescriptor D;
        {
          auto TR = makeFacade(Op, Elem, Dir.str());
          engine::ExecutionEngine &E = TR->engineFor(sim::getPascalP100());
          D = pickDescriptor(*TR, E, B);
          auto V = E.getVariant(D, {}, B);
          ASSERT_TRUE(V.ok()) << V.status().toString();
          std::tie(HashA, SecondA) = bytecodeHashes(**V);
          ResA = runOnce(E, D, Elem, B, N);

          engine::CacheStats S = E.getCacheStats();
          EXPECT_GE(S.VariantsCompiled, 1u);
          EXPECT_GE(S.DiskMisses, 1u);
          EXPECT_EQ(S.DiskHits, 0u);
          EXPECT_EQ(S.DiskWriteFailures, 0u);
        }

        // "Process" B: a fresh cache over the same directory must serve
        // the same key from disk without compiling anything.
        {
          auto TR = makeFacade(Op, Elem, Dir.str());
          engine::ExecutionEngine &E = TR->engineFor(sim::getPascalP100());
          auto V = E.getVariant(D, {}, B);
          ASSERT_TRUE(V.ok()) << V.status().toString();

          engine::CacheStats S = E.getCacheStats();
          EXPECT_EQ(S.VariantsCompiled, 0u);
          EXPECT_EQ(S.DiskHits, 1u);
          EXPECT_EQ(S.CorruptEntriesDropped, 0u);

          // Bit-identical reconstruction: same bytecode (second stage
          // included), and byte-for-byte identical disassembly.
          auto [HashB, SecondB] = bytecodeHashes(**V);
          EXPECT_EQ(HashA, HashB);
          EXPECT_EQ(SecondA, SecondB);

          engine::ReduceResult ResB = runOnce(E, D, Elem, B, N);
          EXPECT_EQ(ResA.FloatValue, ResB.FloatValue);
          EXPECT_EQ(ResA.IntValue, ResB.IntValue);
          EXPECT_EQ(ResA.IndexValue, ResB.IndexValue);
          EXPECT_EQ(E.getCacheStats().VariantsCompiled, 0u);
        }
      }
}

TEST(PersistentCache, DisassemblyRoundTripsExactly) {
  TempDir Dir("disasm");
  VariantDescriptor D;
  std::string TextA, SecondTextA;
  {
    auto TR = makeFacade(ReduceOp::Add, ir::ScalarType::F32, Dir.str());
    engine::ExecutionEngine &E = TR->engineFor(sim::getPascalP100());
    D = TR->getSearchSpace().Pruned.front();
    auto V = E.getVariant(D);
    ASSERT_TRUE(V.ok()) << V.status().toString();
    TextA = (**V).Compiled.disassemble();
    if ((**V).SecondStage)
      SecondTextA = (**V).SecondStage->Compiled.disassemble();
  }
  auto TR = makeFacade(ReduceOp::Add, ir::ScalarType::F32, Dir.str());
  engine::ExecutionEngine &E = TR->engineFor(sim::getPascalP100());
  auto V = E.getVariant(D);
  ASSERT_TRUE(V.ok()) << V.status().toString();
  EXPECT_EQ(TextA, (**V).Compiled.disassemble());
  if ((**V).SecondStage)
    EXPECT_EQ(SecondTextA, (**V).SecondStage->Compiled.disassemble());
  EXPECT_EQ(E.getCacheStats().VariantsCompiled, 0u);
}

TEST(PersistentCache, CorruptionBitFlipRecompilesCleanly) {
  TempDir Dir("corrupt");
  VariantDescriptor D;
  std::string ArtifactPath;
  uint64_t HashA;
  {
    auto TR = makeFacade(ReduceOp::Add, ir::ScalarType::F32, Dir.str());
    engine::ExecutionEngine &E = TR->engineFor(sim::getPascalP100());
    D = TR->getSearchSpace().Pruned.front();
    auto V = E.getVariant(D);
    ASSERT_TRUE(V.ok()) << V.status().toString();
    HashA = ir::stableHash((**V).Compiled);
    auto K = E.keyFor(D);
    ASSERT_TRUE(K.ok());
    ArtifactPath = E.getCache().getDiskCache()->pathFor(*K);
  }
  ASSERT_TRUE(fs::exists(ArtifactPath));

  // Flip one byte in the middle of the artifact (payload region).
  {
    std::fstream F(ArtifactPath,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(F.good());
    const auto Size = fs::file_size(ArtifactPath);
    ASSERT_GT(Size, 64u);
    F.seekg(static_cast<std::streamoff>(Size / 2));
    char Byte = 0;
    F.read(&Byte, 1);
    Byte ^= 0x40;
    F.seekp(static_cast<std::streamoff>(Size / 2));
    F.write(&Byte, 1);
  }

  // A fresh cache must treat the damaged entry as a silent miss: drop it,
  // recompile cleanly, and republish the artifact.
  auto TR = makeFacade(ReduceOp::Add, ir::ScalarType::F32, Dir.str());
  engine::ExecutionEngine &E = TR->engineFor(sim::getPascalP100());
  auto V = E.getVariant(D);
  ASSERT_TRUE(V.ok()) << V.status().toString();
  EXPECT_EQ(ir::stableHash((**V).Compiled), HashA);

  engine::CacheStats S = E.getCacheStats();
  EXPECT_EQ(S.CorruptEntriesDropped, 1u);
  EXPECT_EQ(S.DiskMisses, 1u);
  EXPECT_EQ(S.DiskHits, 0u);
  EXPECT_EQ(S.VariantsCompiled, 1u);

  // Republished: the next fresh cache reads it back as a normal hit.
  auto TR2 = makeFacade(ReduceOp::Add, ir::ScalarType::F32, Dir.str());
  engine::ExecutionEngine &E2 = TR2->engineFor(sim::getPascalP100());
  ASSERT_TRUE(E2.getVariant(D).ok());
  EXPECT_EQ(E2.getCacheStats().DiskHits, 1u);
  EXPECT_EQ(E2.getCacheStats().VariantsCompiled, 0u);
}

TEST(PersistentCache, KeyMismatchIsHardFailure) {
  TempDir Dir("mismatch");
  auto TR = makeFacade(ReduceOp::Add, ir::ScalarType::F32, Dir.str());
  engine::ExecutionEngine &E = TR->engineFor(sim::getPascalP100());
  ASSERT_GE(TR->getSearchSpace().Pruned.size(), 2u);
  VariantDescriptor D1 = TR->getSearchSpace().Pruned[0];
  VariantDescriptor D2 = TR->getSearchSpace().Pruned[1];
  ASSERT_TRUE(E.getVariant(D1).ok());
  ASSERT_TRUE(E.getVariant(D2).ok());
  auto K1 = E.keyFor(D1);
  auto K2 = E.keyFor(D2);
  ASSERT_TRUE(K1.ok() && K2.ok());
  const auto &Disk = E.getCache().getDiskCache();

  // Masquerade D1's (structurally valid) artifact as D2's: the embedded
  // key echo contradicts the key addressing the file.
  std::error_code EC;
  fs::copy_file(Disk->pathFor(*K1), Disk->pathFor(*K2),
                fs::copy_options::overwrite_existing, EC);
  ASSERT_FALSE(EC) << EC.message();

  // Integrity failures are a hard error, never downgraded to a recompile:
  // a hash collision or tampered store must be surfaced, not papered over.
  auto TR2 = makeFacade(ReduceOp::Add, ir::ScalarType::F32, Dir.str());
  engine::ExecutionEngine &E2 = TR2->engineFor(sim::getPascalP100());
  auto V = E2.getVariant(D2);
  ASSERT_FALSE(V.ok());
  EXPECT_EQ(V.code(), support::StatusCode::InternalError);
  EXPECT_EQ(E2.getCacheStats().VariantsCompiled, 0u);

  // The sibling entry is untouched.
  ASSERT_TRUE(E2.getVariant(D1).ok());
  EXPECT_EQ(E2.getCacheStats().DiskHits, 1u);
}

TEST(PersistentCache, PackRoundTripWarmStartsWithoutCompiling) {
  TempDir Dir("pack");
  const std::string PackPath = (Dir.Path / "winner.tgrp").string();
  const size_t N = 2048 + 11;

  VariantDescriptor D, Quarantined;
  uint64_t HashA;
  engine::ReduceResult ResA;
  {
    auto TR = makeFacade(ReduceOp::Add, ir::ScalarType::F32, "");
    engine::ExecutionEngine &E = TR->engineFor(sim::getPascalP100());
    D = TR->getSearchSpace().Pruned.front();
    Quarantined = TR->getSearchSpace().Pruned.back();
    auto V = E.getVariant(D);
    ASSERT_TRUE(V.ok()) << V.status().toString();
    HashA = ir::stableHash((**V).Compiled);
    ResA = runOnce(E, D, ir::ScalarType::F32, engine::Backend::Simulator, N);

    auto Entry =
        E.exportTunedVariant(D, engine::Backend::Simulator, 1.25e-4);
    ASSERT_TRUE(Entry.ok()) << Entry.status().toString();
    engine::TunedPack Pack;
    Pack.Entries.push_back(std::move(*Entry));
    Pack.Quarantined.push_back(
        {sim::getPascalP100().Gen, Quarantined,
         support::Status(support::StatusCode::DeadlineExceeded,
                         "timed out on tuning sweep")});
    support::Status S = engine::writeTunedPack(PackPath, Pack);
    ASSERT_TRUE(S.ok()) << S.toString();
  }

  // Warm start from the pack alone (no cache directory): the variant is
  // served from memory, bit-identical, with zero compiles; the pack's
  // quarantine verdict is pre-applied.
  auto TR = makeFacade(ReduceOp::Add, ir::ScalarType::F32, "", {PackPath});
  engine::ExecutionEngine &E = TR->engineFor(sim::getPascalP100());
  EXPECT_TRUE(E.getStartupWarnings().empty());
  EXPECT_TRUE(E.isQuarantined(Quarantined));
  EXPECT_FALSE(E.isQuarantined(D));

  auto V = E.getVariant(D);
  ASSERT_TRUE(V.ok()) << V.status().toString();
  EXPECT_EQ(ir::stableHash((**V).Compiled), HashA);

  engine::ReduceResult ResB =
      runOnce(E, D, ir::ScalarType::F32, engine::Backend::Simulator, N);
  EXPECT_EQ(ResA.FloatValue, ResB.FloatValue);
  EXPECT_EQ(ResA.Seconds, ResB.Seconds);

  engine::CacheStats S = E.getCacheStats();
  EXPECT_EQ(S.VariantsCompiled, 0u);
  // Two hits: the explicit getVariant and the job's internal resolve.
  EXPECT_EQ(S.Hits, 2u);
  EXPECT_EQ(S.Misses, 0u);
}

TEST(PersistentCache, PackImportWritesThroughToDiskTier) {
  TempDir PackDir("packsrc");
  TempDir CacheDir("packdst");
  const std::string PackPath = (PackDir.Path / "p.tgrp").string();
  VariantDescriptor D;
  {
    auto TR = makeFacade(ReduceOp::Add, ir::ScalarType::F32, "");
    engine::ExecutionEngine &E = TR->engineFor(sim::getPascalP100());
    D = TR->getSearchSpace().Pruned.front();
    auto Entry = E.exportTunedVariant(D, engine::Backend::Simulator, 0);
    ASSERT_TRUE(Entry.ok()) << Entry.status().toString();
    engine::TunedPack Pack;
    Pack.Entries.push_back(std::move(*Entry));
    ASSERT_TRUE(engine::writeTunedPack(PackPath, Pack).ok());
  }

  // Importing into a two-tier engine persists the entry, so a later
  // process over the same directory is warm without the pack.
  {
    auto TR =
        makeFacade(ReduceOp::Add, ir::ScalarType::F32, CacheDir.str(),
                   {PackPath});
    engine::ExecutionEngine &E = TR->engineFor(sim::getPascalP100());
    EXPECT_TRUE(E.getStartupWarnings().empty());
    auto K = E.keyFor(D);
    ASSERT_TRUE(K.ok());
    EXPECT_TRUE(fs::exists(E.getCache().getDiskCache()->pathFor(*K)));
  }
  auto TR = makeFacade(ReduceOp::Add, ir::ScalarType::F32, CacheDir.str());
  engine::ExecutionEngine &E = TR->engineFor(sim::getPascalP100());
  ASSERT_TRUE(E.getVariant(D).ok());
  EXPECT_EQ(E.getCacheStats().DiskHits, 1u);
  EXPECT_EQ(E.getCacheStats().VariantsCompiled, 0u);
}

TEST(PersistentCache, UnreadablePackIsALoudStartupWarning) {
  TempDir Dir("badpack");
  const std::string PackPath = (Dir.Path / "bad.tgrp").string();
  {
    std::ofstream F(PackPath, std::ios::binary);
    F << "this is not a tuned pack";
  }
  auto TR = makeFacade(ReduceOp::Add, ir::ScalarType::F32, "", {PackPath});
  engine::ExecutionEngine &E = TR->engineFor(sim::getPascalP100());
  ASSERT_EQ(E.getStartupWarnings().size(), 1u);
  EXPECT_EQ(E.getStartupWarnings().front().Code,
            support::StatusCode::InvalidArgument);
  // The engine still works cold.
  ASSERT_TRUE(E.getVariant(TR->getSearchSpace().Pruned.front()).ok());
  EXPECT_EQ(E.getCacheStats().VariantsCompiled, 1u);
}
