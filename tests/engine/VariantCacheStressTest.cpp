//===- VariantCacheStressTest.cpp - Single-flight compile stress ------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// Many threads racing getOrCompile on one key must produce exactly one
// compilation: a leader runs the compile, latecomers block on its flight
// and share the artifact. Distinct keys still compile concurrently, and a
// failed flight is not cached (the next caller retries).
//
//===----------------------------------------------------------------------===//

#include "engine/VariantCache.h"

#include "tangram/Tangram.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace tangram;
using namespace tangram::engine;

using support::StatusCode;

namespace {

VariantCache::VariantPtr fakeVariant() {
  return std::make_shared<synth::SynthesizedVariant>();
}

TEST(SingleFlight, EightThreadsOneKeyOneCompile) {
  VariantCache Cache(16);
  VariantKey K;
  K.DescHash = 42;

  std::atomic<unsigned> Compiles{0};
  std::atomic<bool> Go{false};
  std::atomic<unsigned> Successes{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 8; ++T)
    Threads.emplace_back([&] {
      while (!Go.load())
        std::this_thread::yield();
      auto Out = Cache.getOrCompile(K, [&] {
        ++Compiles;
        // Hold the flight open long enough that the other threads pile
        // onto it rather than finding the finished cache entry.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return support::Expected<VariantCache::VariantPtr>(fakeVariant());
      });
      if (Out.ok() && *Out)
        ++Successes;
    });
  Go = true;
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Compiles.load(), 1u);
  EXPECT_EQ(Successes.load(), 8u);
  CacheStats St = Cache.getStats();
  EXPECT_EQ(St.VariantsCompiled, 1u);
  EXPECT_GT(St.SingleFlightWaits, 0u);
  EXPECT_EQ(St.Entries, 1u);
}

TEST(SingleFlight, DistinctKeysCompileConcurrently) {
  VariantCache Cache(16);
  // Two slow compiles on different keys: were flights serialized behind
  // the cache lock, the pair would take >= 2x one compile's wall-clock.
  std::atomic<unsigned> InCompile{0};
  std::atomic<unsigned> PeakConcurrency{0};
  auto SlowCompile = [&] {
    unsigned Now = ++InCompile;
    unsigned Peak = PeakConcurrency.load();
    while (Peak < Now && !PeakConcurrency.compare_exchange_weak(Peak, Now))
      ;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    --InCompile;
    return support::Expected<VariantCache::VariantPtr>(fakeVariant());
  };
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 2; ++T)
    Threads.emplace_back([&, T] {
      VariantKey K;
      K.DescHash = T;
      EXPECT_TRUE(Cache.getOrCompile(K, SlowCompile).ok());
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(PeakConcurrency.load(), 2u);
}

TEST(SingleFlight, FailuresPropagateToWaitersAndAreNotCached) {
  VariantCache Cache(16);
  VariantKey K;
  K.DescHash = 7;

  std::atomic<unsigned> Compiles{0};
  std::atomic<unsigned> FailuresSeen{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 4; ++T)
    Threads.emplace_back([&] {
      auto Out = Cache.getOrCompile(K, [&] {
        ++Compiles;
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        return support::Expected<VariantCache::VariantPtr>(
            support::Status(StatusCode::SynthesisError, "injected"));
      });
      if (!Out.ok() && Out.code() == StatusCode::SynthesisError)
        ++FailuresSeen;
    });
  for (std::thread &T : Threads)
    T.join();
  // Racing threads may fold into one flight or start a few in sequence
  // (failures are not cached) — but every caller saw the leader's Status
  // and nothing was inserted.
  EXPECT_GE(Compiles.load(), 1u);
  EXPECT_EQ(FailuresSeen.load(), 4u);
  EXPECT_EQ(Cache.getStats().Entries, 0u);

  // The key stays compilable: a later success lands in the cache.
  auto Out = Cache.getOrCompile(K, [&] {
    return support::Expected<VariantCache::VariantPtr>(fakeVariant());
  });
  EXPECT_TRUE(Out.ok());
  EXPECT_EQ(Cache.getStats().Entries, 1u);
}

// End-to-end: engines on different threads sharing one cache resolve the
// same descriptor with exactly one synthesis between them.
TEST(SingleFlight, SharedCacheEnginesCompileEachVariantOnce) {
  TangramReduction::Options Opts;
  Opts.Engine.Cache = std::make_shared<VariantCache>(64);
  auto TR = TangramReduction::create(Opts);
  ASSERT_TRUE(TR.ok()) << TR.status().toString();
  const synth::VariantDescriptor Desc =
      (*TR)->getSearchSpace().Pruned.front();

  engine::ExecutionEngine &E = (*TR)->engineFor(sim::getPascalP100());
  const uint64_t Before = Opts.Engine.Cache->getStats().VariantsCompiled;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 8; ++T)
    Threads.emplace_back(
        [&] { EXPECT_TRUE(E.getVariant(Desc).ok()); });
  for (std::thread &T : Threads)
    T.join();
  // One synthesis covers all eight resolvers (the variant may carry a
  // second-stage kernel, which compiles within the same flight).
  EXPECT_EQ(Opts.Engine.Cache->getStats().VariantsCompiled, Before + 1);
}

} // namespace
