//===- FaultSimTest.cpp - Fault-injection matrix + resilience tests ---------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// The FaultSim acceptance suite: every fault kind, injected into
// representative variants on every architecture, must end in a structured
// outcome — detected, trapped by the watchdog, quarantined by the tuner,
// or survived — never a hang, crash, or silently wrong answer. Clean runs
// must stay bit-identical with the fault machinery present but inactive,
// and the DynamicSelector must keep answering through its fallback chain
// when every GPU candidate dies.
//
//===----------------------------------------------------------------------===//

#include "synth/VariantEnumerator.h"
#include "tangram/DynamicSelector.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace tangram;
using namespace tangram::synth;

using support::Status;
using support::StatusCode;

namespace {

TangramReduction &facade() {
  static std::unique_ptr<TangramReduction> TR = [] {
    auto T = TangramReduction::create();
    EXPECT_TRUE(T.ok()) << T.status().toString();
    return std::move(*T);
  }();
  return *TR;
}

/// Runs one fault campaign through the request-shaped diagnose() entry
/// point and unwraps the fault arm.
support::Expected<engine::FaultReport>
faultDiagnose(const VariantDescriptor &V, const sim::ArchDesc &Arch,
              size_t N, const sim::FaultPlan &Plan) {
  engine::DiagnoseRequest DR;
  DR.Kind = engine::DiagnoseKind::Fault;
  DR.Desc = V;
  DR.N = N;
  DR.Plan = Plan;
  auto Report = facade().diagnose(Arch, DR);
  if (!Report)
    return Report.status();
  return Report->Fault;
}

/// Representative variants: one from each corner of the search space the
/// paper depicts (serial-combine, cooperative shared-memory, and the
/// shuffle + shared-atomic hybrid).
std::vector<const VariantDescriptor *> representatives() {
  std::vector<const VariantDescriptor *> Out;
  for (const char *Label : {"a", "m", "p"}) {
    const VariantDescriptor *V =
        findByFigure6Label(facade().getSearchSpace(), Label);
    EXPECT_NE(V, nullptr) << Label;
    if (V)
      Out.push_back(V);
  }
  return Out;
}

// The tentpole acceptance matrix: fault kind x architecture x variant.
// Every cell must terminate within the watchdog budget and classify.
TEST(FaultMatrix, EveryCellTerminatesWithAStructuredOutcome) {
  const size_t N = 2048;
  unsigned ArchCount = 0;
  const sim::ArchDesc *Archs = sim::getAllArchs(ArchCount);
  unsigned KindCount = 0;
  const sim::FaultKind *Kinds = sim::getAllFaultKinds(KindCount);
  ASSERT_GE(KindCount, 6u);

  for (unsigned A = 0; A != ArchCount; ++A)
    for (const VariantDescriptor *V : representatives())
      for (unsigned K = 0; K != KindCount; ++K) {
        sim::FaultPlan Plan;
        Plan.Kind = Kinds[K];
        Plan.Seed = 3;
        Plan.Period = 4;
        auto Report = faultDiagnose(*V, Archs[A], N, Plan);
        ASSERT_TRUE(Report.ok())
            << V->getName() << " on " << Archs[A].Name << ": "
            << Report.status().toString();

        std::string Cell = V->getName() + " / " + Archs[A].Name + " / " +
                           sim::getFaultKindName(Plan.Kind);
        switch (Report->Outcome) {
        case engine::FaultOutcome::Clean:
          // No event of this kind fired; nothing may have changed.
          EXPECT_EQ(Report->FaultsInjected, 0u) << Cell;
          EXPECT_EQ(Report->GotFloat, Report->RefFloat) << Cell;
          break;
        case engine::FaultOutcome::Survived:
          EXPECT_GT(Report->FaultsInjected, 0u) << Cell;
          EXPECT_EQ(Report->GotFloat, Report->RefFloat) << Cell;
          EXPECT_EQ(Report->GotInt, Report->RefInt) << Cell;
          break;
        case engine::FaultOutcome::Detected:
          // The checker caught a corrupted reduction — by definition the
          // values diverge.
          EXPECT_TRUE(Report->GotFloat != Report->RefFloat ||
                      Report->GotInt != Report->RefInt)
              << Cell;
          break;
        case engine::FaultOutcome::Trapped:
          EXPECT_NE(Report->Trap.Code, StatusCode::Ok) << Cell;
          EXPECT_FALSE(Report->Trap.Message.empty()) << Cell;
          break;
        }
      }
}

TEST(FaultMatrix, StuckWarpTrapsViaTheWatchdogOnEveryArch) {
  // A livelocked warp can never be "survived": the cycle-budget watchdog
  // must convert it into a DeadlineExceeded trap on every architecture —
  // including Kepler, whose software-lock shared atomics are the
  // livelock-prone case the paper calls out.
  const VariantDescriptor *V =
      findByFigure6Label(facade().getSearchSpace(), "m");
  ASSERT_NE(V, nullptr);
  unsigned ArchCount = 0;
  const sim::ArchDesc *Archs = sim::getAllArchs(ArchCount);
  for (unsigned A = 0; A != ArchCount; ++A) {
    sim::FaultPlan Plan;
    Plan.Kind = sim::FaultKind::StuckWarp;
    Plan.Period = 1;
    auto Report = faultDiagnose(*V, Archs[A], 4096, Plan);
    ASSERT_TRUE(Report.ok()) << Report.status().toString();
    EXPECT_EQ(Report->Outcome, engine::FaultOutcome::Trapped)
        << Archs[A].Name;
    EXPECT_EQ(Report->Trap.Code, StatusCode::DeadlineExceeded)
        << Archs[A].Name << ": " << Report->Trap.toString();
  }
}

TEST(FaultMatrix, CleanRunsAreBitIdenticalWithInjectorPresent) {
  // The fault hooks sit on the hot store/atomic/barrier paths; with no
  // active plan they must not perturb results in any way.
  engine::ExecutionEngine &E = facade().engineFor(sim::getPascalP100());
  const VariantDescriptor *V =
      findByFigure6Label(facade().getSearchSpace(), "p");
  ASSERT_NE(V, nullptr);
  const size_t N = 4096 + 17;
  std::vector<float> Data(N);
  for (size_t I = 0; I != N; ++I)
    Data[I] = 0.25f * ((I % 9) + 1);

  auto RunOnce = [&]() {
    size_t Mark = E.deviceMark();
    sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, N);
    E.getDevice().writeFloats(In, Data);
    auto Out =
        E.run(engine::ReduceRequest{.Desc = *V, .In = In, .N = N});
    E.deviceRelease(Mark);
    EXPECT_TRUE(Out.ok()) << Out.status().toString();
    return Out.ok() ? std::make_pair(Out->FloatValue,
                                     Out->Launch.Stats.WarpCycles)
                    : std::make_pair(0.0, 0.0);
  };

  auto Baseline = RunOnce();
  // An explicit-but-inactive plan (Kind == None) must change nothing.
  sim::FaultPlan Inactive;
  ASSERT_FALSE(Inactive.active());
  E.setFaultPlan(Inactive);
  auto WithInactivePlan = RunOnce();
  EXPECT_EQ(Baseline.first, WithInactivePlan.first);
  EXPECT_EQ(Baseline.second, WithInactivePlan.second);
  auto Again = RunOnce();
  EXPECT_EQ(Baseline.first, Again.first);
  EXPECT_EQ(Baseline.second, Again.second);
}

TEST(Quarantine, StuckWarpLandsTheVariantInQuarantine) {
  // A dedicated facade so its engines (and quarantine sets) are isolated.
  TangramReduction::Options Opts;
  Opts.Engine.Fault.Kind = sim::FaultKind::StuckWarp;
  Opts.Engine.Fault.Period = 1;
  auto TR = TangramReduction::create(Opts);
  ASSERT_TRUE(TR.ok()) << TR.status().toString();
  engine::ExecutionEngine &E = (*TR)->engineFor(sim::getMaxwellGTX980());
  // A cooperative variant: its barriers guarantee stuck-warp events fire.
  const VariantDescriptor *Coop =
      findByFigure6Label((*TR)->getSearchSpace(), "m");
  ASSERT_NE(Coop, nullptr);
  const VariantDescriptor &V = *Coop;

  // First attempt: deadline, escalated-budget retry, still deadline,
  // quarantined.
  auto T1 = E.timeVariantChecked(V, 4096);
  ASSERT_FALSE(T1.ok());
  EXPECT_EQ(T1.status().Code, StatusCode::DeadlineExceeded)
      << T1.status().toString();
  EXPECT_TRUE(E.isQuarantined(V));

  // Second attempt short-circuits on the quarantine record.
  auto T2 = E.timeVariantChecked(V, 4096);
  ASSERT_FALSE(T2.ok());
  EXPECT_EQ(T2.status().Code, StatusCode::DeadlineExceeded);

  auto Records = E.getQuarantineRecords();
  ASSERT_FALSE(Records.empty());
  EXPECT_FALSE(Records.front().Why.Message.empty());

  // And timeVariant() prices the quarantined configuration out.
  EXPECT_TRUE(std::isinf(E.timeVariant(V, 4096)));

  E.clearQuarantine();
  EXPECT_FALSE(E.isQuarantined(V));
  EXPECT_TRUE(E.getQuarantineRecords().empty());
}

TEST(Quarantine, FindBestUnderDroppedAtomicsStaysStructured) {
  // Tuning an entire portfolio while atomics are being dropped: the sweep
  // must terminate and either produce a *validated* winner or a Status
  // naming the first quarantined configuration — never a silently wrong
  // champion.
  TangramReduction::Options Opts;
  Opts.Engine.Fault.Kind = sim::FaultKind::DropAtomic;
  Opts.Engine.Fault.Seed = 5;
  Opts.Engine.Fault.Period = 4;
  // A small grid keeps the sweep quick; validation still covers winners.
  Opts.BlockSizes = {128, 256};
  Opts.CoarsenFactors = {1, 4};
  auto TR = TangramReduction::create(Opts);
  ASSERT_TRUE(TR.ok()) << TR.status().toString();

  auto Report = (*TR)->findBestReport(sim::getPascalP100(), 2048);
  if (Report.ok()) {
    EXPECT_TRUE(Report->hasWinner());
    // The winner survived validation under injected faults: its functional
    // result matched the host reference despite the plan.
    engine::ExecutionEngine &E = (*TR)->engineFor(sim::getPascalP100());
    EXPECT_FALSE(E.isQuarantined(Report->Best));
    for (const engine::QuarantineRecord &Q : Report->Quarantined)
      EXPECT_FALSE(Q.Why.Message.empty());
  } else {
    // Nothing survived: the status must say why.
    EXPECT_FALSE(Report.status().Message.empty());
  }
}

TEST(Selector, StillAnswersNativelyWhenEveryCandidateIsQuarantined) {
  TangramReduction::Options Opts;
  auto TR = TangramReduction::create(Opts);
  ASSERT_TRUE(TR.ok()) << TR.status().toString();
  engine::ExecutionEngine &E = (*TR)->engineFor(sim::getKeplerK40c());

  // Poison the entire default portfolio (the paper's best eight).
  for (const VariantDescriptor &V : (*TR)->getSearchSpace().Pruned)
    if (V.isPaperBest())
      E.quarantineVariant(
          V, Status(StatusCode::DeadlineExceeded, "poisoned for test"));

  DynamicSelector Selector(**TR);
  const size_t N = 3000;
  std::vector<float> Data(N);
  double Expected = 0;
  for (size_t I = 0; I != N; ++I) {
    Data[I] = static_cast<float>(I % 17);
    Expected += Data[I];
  }
  size_t Mark = E.deviceMark();
  sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, N);
  E.getDevice().writeFloats(In, Data);
  auto Out =
        Selector.reduce(E, engine::ReduceRequest{.In = In, .N = N});
  E.deviceRelease(Mark);

  ASSERT_TRUE(Out.ok()) << Out.status().toString();
  EXPECT_EQ(Out->FloatValue, Expected); // exact: i%17 sums are integral
  EXPECT_GT(Out->Seconds, 0.0);
  // Quarantine is a simulator-path verdict: the portfolio retries on the
  // native CPU backend and answers there, one tier above the host-loop
  // last resort.
  EXPECT_EQ(Selector.getNativeFallbackRuns(), 1u);
  EXPECT_EQ(Selector.getFallbackRuns(), 0u);
  EXPECT_EQ(Selector.getDeadCandidates(), 0u); // quarantined, not trapped
}

TEST(Selector, KeepsAnsweringUnderInjectedStuckWarps) {
  // The end-to-end resilience story: with a livelock fault injected into
  // every launch, the caller of the selector still gets correct answers on
  // every call — candidates that trap are marked dead and the chain ends
  // at the host baseline if necessary.
  TangramReduction::Options Opts;
  Opts.Engine.Fault.Kind = sim::FaultKind::StuckWarp;
  Opts.Engine.Fault.Period = 1;
  auto TR = TangramReduction::create(Opts);
  ASSERT_TRUE(TR.ok()) << TR.status().toString();
  engine::ExecutionEngine &E = (*TR)->engineFor(sim::getPascalP100());

  DynamicSelector Selector(**TR);
  const size_t N = 2048;
  std::vector<float> Data(N);
  double Expected = 0;
  for (size_t I = 0; I != N; ++I) {
    Data[I] = static_cast<float>((I % 5) + 1);
    Expected += Data[I];
  }

  for (unsigned Call = 0; Call != 3; ++Call) {
    size_t Mark = E.deviceMark();
    sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, N);
    E.getDevice().writeFloats(In, Data);
    auto Out =
        Selector.reduce(E, engine::ReduceRequest{.In = In, .N = N});
    E.deviceRelease(Mark);
    ASSERT_TRUE(Out.ok()) << "call " << Call << ": "
                          << Out.status().toString();
    EXPECT_EQ(Out->FloatValue, Expected) << "call " << Call;
  }
  // Under Period=1 every kernel with a loop or barrier traps; at least one
  // candidate must have died (the portfolio is not barrier-free).
  EXPECT_GT(Selector.getDeadCandidates(), 0u);
}

TEST(Facade, FaultCheckMirrorsRaceCheckErrorHandling) {
  // An engine-misuse style failure (empty problem) surfaces as a Status,
  // not a crash; a valid call returns a classified report.
  const VariantDescriptor *V =
      findByFigure6Label(facade().getSearchSpace(), "a");
  ASSERT_NE(V, nullptr);
  sim::FaultPlan Plan;
  Plan.Kind = sim::FaultKind::BitFlipGlobal;
  auto Report = faultDiagnose(*V, sim::getMaxwellGTX980(), 2048, Plan);
  ASSERT_TRUE(Report.ok()) << Report.status().toString();
  EXPECT_EQ(Report->Kind, sim::FaultKind::BitFlipGlobal);
}

} // namespace
