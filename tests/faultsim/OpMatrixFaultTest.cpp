//===- OpMatrixFaultTest.cpp - FaultSim over the op x dtype matrix ----------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// Fault-injection acceptance multiplied by the reduce::OpDef axis: every
// spectrum point of {Add, Min, Max, ArgMax} x {F32, I32, I64} classifies
// injected faults into structured outcomes, and — the index-payload
// guarantee — a seeded fault that corrupts an arg-reduction is caught by
// the oracle even when only the *index* lane diverges, because the
// fault-check comparison validates values and indices both.
//
// Registered under the `op-matrix` ctest label (tier1-opmatrix preset).
//
//===----------------------------------------------------------------------===//

#include "reduce/OpDef.h"
#include "tangram/Tangram.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

using namespace tangram;
using namespace tangram::synth;

using support::StatusCode;

namespace {

struct MatrixPoint {
  ReduceOp Op;
  ir::ScalarType Elem;
};

std::string pointName(const MatrixPoint &P) {
  return std::string(getReduceOpSpelling(P.Op)) + "_" +
         reduce::getScalarTypeSpelling(P.Elem);
}

const MatrixPoint Matrix[] = {
    {ReduceOp::Add, ir::ScalarType::F32},
    {ReduceOp::Add, ir::ScalarType::I32},
    {ReduceOp::Add, ir::ScalarType::I64},
    {ReduceOp::Min, ir::ScalarType::F32},
    {ReduceOp::Min, ir::ScalarType::I32},
    {ReduceOp::Min, ir::ScalarType::I64},
    {ReduceOp::Max, ir::ScalarType::F32},
    {ReduceOp::Max, ir::ScalarType::I32},
    {ReduceOp::Max, ir::ScalarType::I64},
    {ReduceOp::ArgMax, ir::ScalarType::F32},
    {ReduceOp::ArgMax, ir::ScalarType::I32},
    {ReduceOp::ArgMax, ir::ScalarType::I64},
};

/// One fault campaign via the request-shaped diagnose() entry point.
support::Expected<engine::FaultReport>
faultDiagnose(TangramReduction &TR, const VariantDescriptor &V,
              const sim::ArchDesc &Arch, size_t N,
              const sim::FaultPlan &Plan) {
  engine::DiagnoseRequest DR;
  DR.Kind = engine::DiagnoseKind::Fault;
  DR.Desc = V;
  DR.N = N;
  DR.Plan = Plan;
  auto Report = TR.diagnose(Arch, DR);
  if (!Report)
    return Report.status();
  return Report->Fault;
}

TangramReduction &facadeFor(const MatrixPoint &P) {
  static std::map<std::pair<ReduceOp, ir::ScalarType>,
                  std::unique_ptr<TangramReduction>>
      Cache;
  auto Key = std::make_pair(P.Op, P.Elem);
  auto It = Cache.find(Key);
  if (It == Cache.end()) {
    TangramReduction::Options Opts;
    Opts.Op = P.Op;
    Opts.Elem = P.Elem;
    auto TR = TangramReduction::create(Opts);
    EXPECT_TRUE(TR.ok()) << pointName(P) << ": " << TR.status().toString();
    It = Cache.emplace(Key, std::move(*TR)).first;
  }
  return *It->second;
}

class OpMatrixFault : public ::testing::TestWithParam<MatrixPoint> {};

TEST_P(OpMatrixFault, BitflipsClassifyStructurallyOnEveryArch) {
  const MatrixPoint &P = GetParam();
  TangramReduction &TR = facadeFor(P);
  const size_t N = 2048;

  unsigned ArchCount = 0;
  const sim::ArchDesc *Archs = sim::getAllArchs(ArchCount);
  for (unsigned A = 0; A != ArchCount; ++A) {
    const sim::ArchDesc &Arch = Archs[A];
    bool Illegal = reduce::atomicLegality(P.Op, P.Elem, Arch.Gen) ==
                   reduce::AtomicSupport::Illegal;
    // The shuffle + shared-atomic hybrid exercises every lowering layer
    // the op axis touches (shuffle pairs, shared CAS, global combine).
    const VariantDescriptor *V =
        findByFigure6Label(TR.getSearchSpace(), "p");
    ASSERT_NE(V, nullptr);
    for (sim::FaultKind Kind :
         {sim::FaultKind::BitFlipShared, sim::FaultKind::BitFlipGlobal,
          sim::FaultKind::DropAtomic}) {
      sim::FaultPlan Plan;
      Plan.Kind = Kind;
      Plan.Seed = 7;
      Plan.Period = 4;
      auto Report = faultDiagnose(TR, *V, Arch, N, Plan);
      std::string Cell = pointName(P) + " / " + Arch.Name + " / " +
                         sim::getFaultKindName(Kind);
      if (Illegal) {
        ASSERT_FALSE(Report.ok()) << Cell;
        EXPECT_EQ(Report.status().Code, StatusCode::SynthesisError) << Cell;
        continue;
      }
      ASSERT_TRUE(Report.ok())
          << Cell << ": " << Report.status().toString();
      switch (Report->Outcome) {
      case engine::FaultOutcome::Clean:
        EXPECT_EQ(Report->FaultsInjected, 0u) << Cell;
        break;
      case engine::FaultOutcome::Survived:
        EXPECT_GT(Report->FaultsInjected, 0u) << Cell;
        EXPECT_EQ(Report->GotFloat, Report->RefFloat) << Cell;
        EXPECT_EQ(Report->GotInt, Report->RefInt) << Cell;
        if (isArgReduce(P.Op))
          EXPECT_EQ(Report->GotIndex, Report->RefIndex) << Cell;
        break;
      case engine::FaultOutcome::Detected:
        EXPECT_TRUE(Report->GotFloat != Report->RefFloat ||
                    Report->GotInt != Report->RefInt ||
                    Report->GotIndex != Report->RefIndex)
            << Cell;
        break;
      case engine::FaultOutcome::Trapped:
        EXPECT_NE(Report->Trap.Code, StatusCode::Ok) << Cell;
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OpMatrixFault, ::testing::ValuesIn(Matrix),
    [](const ::testing::TestParamInfo<MatrixPoint> &Info) {
      return pointName(Info.param);
    });

TEST(ArgMaxFaultOracle, SeededFaultSweepValidatesIndexPayloads) {
  // The seeded-fault argmax run the satellite demands: dropping atomic
  // updates from an argmax reduction typically loses a *tie contender*,
  // so the surviving winner carries the right value but the wrong index.
  // Only an oracle that validates the index lane — not just the winning
  // value — can detect that corruption. Sweep seeds until such an
  // index-only divergence is detected.
  MatrixPoint P{ReduceOp::ArgMax, ir::ScalarType::I64};
  TangramReduction &TR = facadeFor(P);
  const VariantDescriptor *V =
      findByFigure6Label(TR.getSearchSpace(), "p");
  ASSERT_NE(V, nullptr);
  const sim::ArchDesc &Arch = sim::getPascalP100();
  const size_t N = 2048;

  bool SawIndexOnlyDetection = false;
  for (uint64_t Seed = 1; Seed <= 16 && !SawIndexOnlyDetection; ++Seed) {
    sim::FaultPlan Plan;
    Plan.Kind = sim::FaultKind::DropAtomic;
    Plan.Seed = Seed;
    Plan.Period = 2;
    auto Report = faultDiagnose(TR, *V, Arch, N, Plan);
    ASSERT_TRUE(Report.ok()) << Report.status().toString();
    // The clean reference must carry a meaningful index payload.
    EXPECT_NE(Report->RefIndex, ReduceIndexSentinel);
    EXPECT_GE(Report->RefIndex, 0);
    EXPECT_LT(Report->RefIndex, static_cast<long long>(N));
    SawIndexOnlyDetection =
        Report->Outcome == engine::FaultOutcome::Detected &&
        Report->GotInt == Report->RefInt &&
        Report->GotIndex != Report->RefIndex;
  }
  EXPECT_TRUE(SawIndexOnlyDetection)
      << "no seed in [1,16] produced a detected index-lane-only argmax "
         "corruption";
}

} // namespace
