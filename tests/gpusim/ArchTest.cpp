//===- ArchTest.cpp - Architecture descriptor invariants ----------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// Invariants over the Kepler/Maxwell/Pascal descriptors: the model
// parameters must stay physically consistent (efficiencies <= 1, warp
// size 32) and encode the Section II-A hardware evolution (Kepler lock
// loop -> Maxwell native -> Pascal scoped; scoped atomics only on
// Pascal).
//
//===----------------------------------------------------------------------===//

#include "gpusim/Arch.h"

#include <gtest/gtest.h>

using namespace tangram::sim;

namespace {

class ArchInvariants : public ::testing::TestWithParam<int> {
protected:
  const ArchDesc &arch() const {
    unsigned Count = 0;
    return getAllArchs(Count)[GetParam()];
  }
};

TEST_P(ArchInvariants, GeometryIsSane) {
  const ArchDesc &A = arch();
  EXPECT_EQ(A.WarpSize, 32u);
  EXPECT_GT(A.NumSMs, 0u);
  EXPECT_GT(A.ClockGHz, 0.5);
  EXPECT_LE(A.MaxThreadsPerBlock, 1024u);
  EXPECT_GE(A.MaxThreadsPerSM, A.MaxThreadsPerBlock);
  EXPECT_LE(A.SharedMemPerBlockBytes, A.SharedMemPerSMBytes);
}

TEST_P(ArchInvariants, MemoryEfficienciesArePhysical) {
  const ArchDesc &A = arch();
  EXPECT_GT(A.ScalarLoadEfficiency, 0.0);
  EXPECT_LE(A.ScalarLoadEfficiency, 1.0);
  EXPECT_LE(A.VectorLoadEfficiency, 1.0);
  EXPECT_LE(A.StagedLoadEfficiency, 1.0);
  // Vectorized loads never underperform per-element scalar loads.
  EXPECT_GE(A.VectorLoadEfficiency, A.ScalarLoadEfficiency);
  EXPECT_GT(A.DramBandwidthGBs, 100.0);
}

TEST_P(ArchInvariants, CostsArePositive) {
  const ArchDesc &A = arch();
  EXPECT_GT(A.AluCost, 0.0);
  EXPECT_GT(A.SharedLdStCost, 0.0);
  EXPECT_GT(A.GlobalLdStCost, A.SharedLdStCost);
  EXPECT_GT(A.ShuffleCost, 0.0);
  EXPECT_LT(A.ShuffleCost, A.SharedLdStCost)
      << "shuffles must be cheaper than shared-memory round trips "
         "(Section II-A1)";
  EXPECT_GT(A.SharedAtomicBaseCost, 0.0);
  EXPECT_GT(A.KernelLaunchOverheadUs, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllArchs, ArchInvariants,
                         ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           return Info.param == 0   ? std::string("Kepler")
                                  : Info.param == 1 ? std::string("Maxwell")
                                                    : std::string("Pascal");
                         });

TEST(ArchEvolution, SharedAtomicHardwareImproves) {
  // Section II-A2: software lock loop (Kepler) -> native (Maxwell) ->
  // native + scopes (Pascal).
  EXPECT_EQ(getKeplerK40c().SharedAtomics, SharedAtomicImpl::SoftwareLock);
  EXPECT_EQ(getMaxwellGTX980().SharedAtomics, SharedAtomicImpl::Native);
  EXPECT_EQ(getPascalP100().SharedAtomics, SharedAtomicImpl::NativeScoped);

  EXPECT_FALSE(getKeplerK40c().hasNativeSharedAtomics());
  EXPECT_TRUE(getMaxwellGTX980().hasNativeSharedAtomics());
  EXPECT_FALSE(getMaxwellGTX980().hasScopedAtomics());
  EXPECT_TRUE(getPascalP100().hasScopedAtomics());

  // Contention pricing orders with the hardware generations.
  EXPECT_GT(getKeplerK40c().SharedAtomicConflictCost,
            10 * getMaxwellGTX980().SharedAtomicConflictCost);
  EXPECT_GE(getMaxwellGTX980().SharedAtomicConflictCost,
            getPascalP100().SharedAtomicConflictCost);
  // Only Pascal discounts block-scoped global atomics.
  EXPECT_EQ(getKeplerK40c().BlockScopeAtomicFactor, 1.0);
  EXPECT_EQ(getMaxwellGTX980().BlockScopeAtomicFactor, 1.0);
  EXPECT_LT(getPascalP100().BlockScopeAtomicFactor, 1.0);
}

TEST(ArchEvolution, LaunchOverheadShrinksWithGenerations) {
  EXPECT_GE(getKeplerK40c().KernelLaunchOverheadUs,
            getMaxwellGTX980().KernelLaunchOverheadUs);
  EXPECT_GE(getMaxwellGTX980().KernelLaunchOverheadUs,
            getPascalP100().KernelLaunchOverheadUs);
}

} // namespace
