//===- DeviceTest.cpp - Device memory and virtual buffer tests ----------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "gpusim/Device.h"

#include "gpusim/SimtMachine.h"
#include "ir/Bytecode.h"

#include <gtest/gtest.h>

using namespace tangram;
using namespace tangram::ir;
using namespace tangram::sim;

namespace {

TEST(Device, DenseReadWriteRoundTrip) {
  Device Dev;
  BufferId Id = Dev.alloc(ScalarType::F32, 8);
  Dev.writeFloats(Id, {1.5f, -2.0f, 0.0f});
  EXPECT_FLOAT_EQ(Dev.readFloat(Id, 0), 1.5f);
  EXPECT_FLOAT_EQ(Dev.readFloat(Id, 1), -2.0f);
  EXPECT_FLOAT_EQ(Dev.readFloat(Id, 7), 0.0f); // Untouched cells are zero.

  BufferId IntId = Dev.alloc(ScalarType::I32, 4);
  Dev.writeInts(IntId, {7, -9});
  EXPECT_EQ(Dev.readInt(IntId, 0), 7);
  EXPECT_EQ(Dev.readInt(IntId, 1), -9);
}

TEST(Device, VirtualPatternValues) {
  VirtualPattern P;
  P.Base = 2.0;
  P.Scale = 0.5;
  P.Modulus = 4;
  // value(i) = 2 + 0.5 * (i % 4)
  EXPECT_FLOAT_EQ(P.at(0).F, 2.0f);
  EXPECT_FLOAT_EQ(P.at(3).F, 3.5f);
  EXPECT_FLOAT_EQ(P.at(4).F, 2.0f); // Wraps.
  EXPECT_FLOAT_EQ(P.at(7).F, 3.5f);
}

TEST(Device, VirtualPatternSumMatchesBruteForce) {
  VirtualPattern P;
  P.Base = -1.0;
  P.Scale = 0.25;
  P.Modulus = 13;
  for (uint64_t N : {1ull, 12ull, 13ull, 14ull, 100ull, 12345ull}) {
    double Brute = 0;
    for (uint64_t I = 0; I != N; ++I)
      Brute += P.at(I).F;
    EXPECT_NEAR(P.sumFirst(N), Brute, std::abs(Brute) * 1e-9 + 1e-9)
        << "N=" << N;
  }
}

TEST(Device, VirtualBufferReadsPattern) {
  Device Dev;
  VirtualPattern P;
  P.Modulus = 5;
  BufferId Id = Dev.allocVirtual(ScalarType::F32, 1000, P);
  EXPECT_TRUE(Dev.get(Id).isVirtual());
  EXPECT_FLOAT_EQ(Dev.readFloat(Id, 7), 2.0f); // 7 % 5 = 2.
  EXPECT_EQ(Dev.get(Id).writable(0), nullptr); // Read-only.
}

TEST(Device, KernelWriteToVirtualBufferIsAnError) {
  Module M;
  Kernel *K = M.addKernel("store_virtual");
  Param *Out = K->addPointerParam("out", ScalarType::F32);
  K->getBody().push_back(
      M.create<StoreGlobalStmt>(Out, M.constI(0), M.constF(1.0)));
  CompiledKernel CK = compileKernel(*K);

  Device Dev;
  VirtualPattern P;
  BufferId Id = Dev.allocVirtual(ScalarType::F32, 64, P);
  SimtMachine Machine(Dev, getMaxwellGTX980());
  LaunchResult R = Machine.launch(CK, {1, 32, 0}, {ArgValue::buffer(Id)});
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors.front().find("read-only"), std::string::npos);
}

TEST(Device, KernelReductionOverVirtualBufferMatchesAnalyticSum) {
  // The bench-harness contract: a kernel that sums a virtual buffer must
  // produce VirtualPattern::sumFirst (float32 rounding aside).
  Module M;
  Kernel *K = M.addKernel("sum_virtual");
  Param *Out = K->addPointerParam("out", ScalarType::F32);
  Param *In = K->addPointerParam("in", ScalarType::F32);
  Param *N = K->addScalarParam("n", ScalarType::I32);
  Local *Tid = K->addLocal("tid", ScalarType::U32);
  K->getBody().push_back(M.create<DeclLocalStmt>(
      Tid, M.arith(BinOp::Add,
                   M.arith(BinOp::Mul, M.special(SpecialReg::BlockIdxX),
                           M.special(SpecialReg::BlockDimX)),
                   M.special(SpecialReg::ThreadIdxX))));
  Local *Val = K->addLocal("val", ScalarType::F32);
  K->getBody().push_back(M.create<DeclLocalStmt>(
      Val, M.create<SelectExpr>(
               M.cmp(BinOp::LT, M.ref(Tid), M.ref(N)),
               M.create<LoadGlobalExpr>(In, M.ref(Tid)), M.constF(0.0),
               ScalarType::F32)));
  K->getBody().push_back(M.create<AtomicGlobalStmt>(
      ReduceOp::Add, AtomicScope::Device, Out, M.constI(0), M.ref(Val)));
  CompiledKernel CK = compileKernel(*K);

  const unsigned Size = 10000;
  Device Dev;
  VirtualPattern P;
  P.Base = 0.5;
  P.Scale = 0.125;
  P.Modulus = 32; // Power of two: float32-exact partial sums.
  BufferId InBuf = Dev.allocVirtual(ScalarType::F32, Size, P);
  BufferId OutBuf = Dev.alloc(ScalarType::F32, 1);
  SimtMachine Machine(Dev, getPascalP100());
  LaunchResult R = Machine.launch(
      CK, {(Size + 255) / 256, 256, 0},
      {ArgValue::buffer(OutBuf), ArgValue::buffer(InBuf),
       ArgValue::scalar(Size)});
  ASSERT_TRUE(R.ok()) << R.Errors.front();
  EXPECT_NEAR(Dev.readFloat(OutBuf, 0), P.sumFirst(Size), 1e-1);
}

} // namespace
