//===- ShuffleModesTest.cpp - Warp shuffle flavor tests -----------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// Section II-A1 lists four shuffle flavors (shift up/down, butterfly/xor,
// indexed) plus subwarp operation. These tests pin the simulator's
// semantics for each, including segment-boundary behaviour.
//
//===----------------------------------------------------------------------===//

#include "gpusim/SimtMachine.h"
#include "ir/Bytecode.h"

#include <gtest/gtest.h>

using namespace tangram;
using namespace tangram::ir;
using namespace tangram::sim;

namespace {

/// Builds a one-warp kernel: out[tid] = shuffle(in[tid], offset).
CompiledKernel buildShuffleKernel(Module &M, ShuffleMode Mode,
                                  long long Offset, unsigned Width) {
  Kernel *K = M.addKernel("shfl_probe");
  Param *Out = K->addPointerParam("out", ScalarType::I32);
  Param *In = K->addPointerParam("in", ScalarType::I32);
  Local *Val = K->addLocal("val", ScalarType::I32);
  K->getBody().push_back(M.create<DeclLocalStmt>(
      Val, M.create<LoadGlobalExpr>(In, M.special(SpecialReg::ThreadIdxX))));
  Local *Res = K->addLocal("res", ScalarType::I32);
  K->getBody().push_back(M.create<DeclLocalStmt>(
      Res, M.create<ShuffleExpr>(Mode, M.ref(Val), M.constI(Offset),
                                 Width)));
  K->getBody().push_back(M.create<StoreGlobalStmt>(
      Out, M.special(SpecialReg::ThreadIdxX), M.ref(Res)));
  return compileKernel(*K);
}

std::vector<long long> runShuffle(ShuffleMode Mode, long long Offset,
                                  unsigned Width) {
  Module M;
  CompiledKernel CK = buildShuffleKernel(M, Mode, Offset, Width);
  Device Dev;
  BufferId In = Dev.alloc(ScalarType::I32, 32);
  BufferId Out = Dev.alloc(ScalarType::I32, 32);
  std::vector<int> Lanes(32);
  for (int L = 0; L != 32; ++L)
    Lanes[L] = 100 + L; // Distinguishable per-lane values.
  Dev.writeInts(In, Lanes);
  SimtMachine Machine(Dev, getMaxwellGTX980());
  LaunchResult R = Machine.launch(
      CK, {1, 32, 0}, {ArgValue::buffer(Out), ArgValue::buffer(In)});
  EXPECT_TRUE(R.ok());
  std::vector<long long> Result(32);
  for (int L = 0; L != 32; ++L)
    Result[L] = Dev.readInt(Out, L);
  return Result;
}

TEST(ShuffleModes, DownShiftsFromHigherLanes) {
  auto R = runShuffle(ShuffleMode::Down, 4, 32);
  for (int L = 0; L != 28; ++L)
    EXPECT_EQ(R[L], 100 + L + 4) << L;
  // Out-of-segment lanes keep their own value (CUDA semantics).
  for (int L = 28; L != 32; ++L)
    EXPECT_EQ(R[L], 100 + L) << L;
}

TEST(ShuffleModes, UpShiftsFromLowerLanes) {
  auto R = runShuffle(ShuffleMode::Up, 3, 32);
  for (int L = 0; L != 3; ++L)
    EXPECT_EQ(R[L], 100 + L) << L;
  for (int L = 3; L != 32; ++L)
    EXPECT_EQ(R[L], 100 + L - 3) << L;
}

TEST(ShuffleModes, XorIsButterflyExchange) {
  auto R = runShuffle(ShuffleMode::Xor, 1, 32);
  for (int L = 0; L != 32; ++L)
    EXPECT_EQ(R[L], 100 + (L ^ 1)) << L;
  auto R16 = runShuffle(ShuffleMode::Xor, 16, 32);
  for (int L = 0; L != 32; ++L)
    EXPECT_EQ(R16[L], 100 + (L ^ 16)) << L;
}

TEST(ShuffleModes, IdxBroadcastsWithinSegment) {
  auto R = runShuffle(ShuffleMode::Idx, 5, 32);
  for (int L = 0; L != 32; ++L)
    EXPECT_EQ(R[L], 100 + 5) << L; // Everyone reads lane 5.
}

TEST(ShuffleModes, SubwarpSegmentsAreIndependent) {
  // Width 8: four independent segments per warp (Section II-A1's
  // subwarps). A down-shift never crosses a segment boundary.
  auto R = runShuffle(ShuffleMode::Down, 2, 8);
  for (int L = 0; L != 32; ++L) {
    int Seg = L / 8 * 8;
    long long Expect = (L + 2 < Seg + 8) ? 100 + L + 2 : 100 + L;
    EXPECT_EQ(R[L], Expect) << L;
  }
}

TEST(ShuffleModes, SubwarpIdxBroadcastsPerSegment) {
  auto R = runShuffle(ShuffleMode::Idx, 0, 16);
  for (int L = 0; L != 32; ++L)
    EXPECT_EQ(R[L], 100 + (L / 16) * 16) << L; // Lane 0 of own segment.
}

TEST(ShuffleModes, SubwarpButterflyReduction) {
  // A full butterfly reduction over width-16 subwarps: every lane of a
  // segment ends with the segment's sum — the xor-based reduction
  // alternative to shfl_down trees.
  Module M;
  Kernel *K = M.addKernel("xor_reduce");
  Param *Out = K->addPointerParam("out", ScalarType::I32);
  Param *InParam = K->addPointerParam("in", ScalarType::I32);
  Local *Val = K->addLocal("val", ScalarType::I32);
  K->getBody().push_back(M.create<DeclLocalStmt>(
      Val,
      M.create<LoadGlobalExpr>(InParam, M.special(SpecialReg::ThreadIdxX))));
  Local *Off = K->addLocal("o", ScalarType::I32);
  std::vector<Stmt *> Body = {M.create<AssignStmt>(
      Val, M.arith(BinOp::Add, M.ref(Val),
                   M.create<ShuffleExpr>(ShuffleMode::Xor, M.ref(Val),
                                         M.ref(Off), 16)))};
  K->getBody().push_back(M.create<ForStmt>(
      Off, M.constI(8), M.cmp(BinOp::GT, M.ref(Off), M.constI(0)),
      M.arith(BinOp::Div, M.ref(Off), M.constI(2)), std::move(Body)));
  K->getBody().push_back(M.create<StoreGlobalStmt>(
      Out, M.special(SpecialReg::ThreadIdxX), M.ref(Val)));
  CompiledKernel CK = compileKernel(*K);

  Device Dev;
  BufferId In = Dev.alloc(ScalarType::I32, 32);
  BufferId OutBuf = Dev.alloc(ScalarType::I32, 32);
  std::vector<int> Data(32);
  long long Sum0 = 0, Sum1 = 0;
  for (int L = 0; L != 32; ++L) {
    Data[L] = L * L + 1;
    (L < 16 ? Sum0 : Sum1) += Data[L];
  }
  Dev.writeInts(In, Data);
  SimtMachine Machine(Dev, getPascalP100());
  LaunchResult R = Machine.launch(
      CK, {1, 32, 0}, {ArgValue::buffer(OutBuf), ArgValue::buffer(In)});
  ASSERT_TRUE(R.ok());
  for (int L = 0; L != 32; ++L)
    EXPECT_EQ(Dev.readInt(OutBuf, L), L < 16 ? Sum0 : Sum1) << L;
}

} // namespace
