//===- SimtMachineTest.cpp - SIMT machine execution tests ------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// Hand-built kernel IR programs exercising the SIMT machine: lockstep
// execution, divergence, barriers, shared memory, atomics, and shuffles.
//
//===----------------------------------------------------------------------===//

#include "gpusim/PerfModel.h"
#include "gpusim/SimtMachine.h"
#include "ir/Bytecode.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace tangram;
using namespace tangram::ir;
using namespace tangram::sim;

namespace {

/// Builds: out[tid_global] = in[tid_global] * 2 (elementwise doubling).
struct DoubleKernel {
  Module M;
  Kernel *K = nullptr;
  Param *In = nullptr, *Out = nullptr, *N = nullptr;

  DoubleKernel() {
    K = M.addKernel("double_elements");
    Out = K->addPointerParam("out", ScalarType::I32);
    In = K->addPointerParam("in", ScalarType::I32);
    N = K->addScalarParam("n", ScalarType::I32);

    Local *Tid = K->addLocal("tid", ScalarType::U32);
    Expr *Gid = M.arith(
        BinOp::Add,
        M.arith(BinOp::Mul, M.special(SpecialReg::BlockIdxX),
                M.special(SpecialReg::BlockDimX)),
        M.special(SpecialReg::ThreadIdxX));
    K->getBody().push_back(M.create<DeclLocalStmt>(Tid, Gid));

    Expr *InBounds = M.cmp(BinOp::LT, M.ref(Tid), M.ref(N));
    Expr *Loaded = M.create<LoadGlobalExpr>(In, M.ref(Tid));
    Expr *Doubled =
        M.arith(BinOp::Mul, Loaded, M.constI(2));
    std::vector<Stmt *> Then = {
        M.create<StoreGlobalStmt>(Out, M.ref(Tid), Doubled)};
    K->getBody().push_back(
        M.create<IfStmt>(InBounds, std::move(Then), std::vector<Stmt *>{}));
  }
};

TEST(SimtMachine, ElementwiseDoubling) {
  DoubleKernel B;
  std::vector<std::string> Errors;
  ASSERT_TRUE(verifyKernel(*B.K, Errors)) << Errors.front();

  CompiledKernel CK = compileKernel(*B.K);
  Device Dev;
  BufferId InBuf = Dev.alloc(ScalarType::I32, 100);
  BufferId OutBuf = Dev.alloc(ScalarType::I32, 100);
  std::vector<int> Data(100);
  std::iota(Data.begin(), Data.end(), 1);
  Dev.writeInts(InBuf, Data);

  SimtMachine Machine(Dev, getMaxwellGTX980());
  LaunchConfig Config{/*GridDim=*/2, /*BlockDim=*/64, 0};
  LaunchResult R = Machine.launch(
      CK, Config,
      {ArgValue::buffer(OutBuf), ArgValue::buffer(InBuf),
       ArgValue::scalar(100)});
  ASSERT_TRUE(R.ok()) << R.Errors.front();

  for (size_t I = 0; I != 100; ++I)
    EXPECT_EQ(Dev.readInt(OutBuf, I), 2 * static_cast<long long>(I + 1));
  EXPECT_GT(R.Stats.WarpCycles, 0);
  EXPECT_GT(R.Stats.LaneInstructions, 0u);
}

/// Builds the canonical shuffle-based warp reduction followed by a global
/// atomic (the shape of the paper's Listing 4 + global atomics).
struct ShuffleReduceKernel {
  Module M;
  Kernel *K = nullptr;
  Param *Out = nullptr, *In = nullptr, *N = nullptr;

  ShuffleReduceKernel() {
    K = M.addKernel("reduce_shfl");
    Out = K->addPointerParam("out", ScalarType::F32);
    In = K->addPointerParam("in", ScalarType::F32);
    N = K->addScalarParam("n", ScalarType::I32);

    Local *Tid = K->addLocal("tid", ScalarType::U32);
    Expr *Gid = M.arith(
        BinOp::Add,
        M.arith(BinOp::Mul, M.special(SpecialReg::BlockIdxX),
                M.special(SpecialReg::BlockDimX)),
        M.special(SpecialReg::ThreadIdxX));
    K->getBody().push_back(M.create<DeclLocalStmt>(Tid, Gid));

    // val = tid < n ? in[tid] : 0
    Local *Val = K->addLocal("val", ScalarType::F32);
    Expr *Loaded = M.create<SelectExpr>(
        M.cmp(BinOp::LT, M.ref(Tid), M.ref(N)),
        M.create<LoadGlobalExpr>(In, M.ref(Tid)), M.constF(0.0),
        ScalarType::F32);
    K->getBody().push_back(M.create<DeclLocalStmt>(Val, Loaded));

    // for (offset = 16; offset > 0; offset /= 2)
    //   val += shfl_down(val, offset)
    Local *Off = K->addLocal("offset", ScalarType::I32);
    Expr *Shfl = M.create<ShuffleExpr>(ShuffleMode::Down, M.ref(Val),
                                       M.ref(Off), 32);
    std::vector<Stmt *> LoopBody = {M.create<AssignStmt>(
        Val, M.arith(BinOp::Add, M.ref(Val), Shfl))};
    K->getBody().push_back(M.create<ForStmt>(
        Off, M.constI(16), M.cmp(BinOp::GT, M.ref(Off), M.constI(0)),
        M.arith(BinOp::Div, M.ref(Off), M.constI(2)), std::move(LoopBody)));

    // if (threadIdx.x % 32 == 0) atomicAdd(out, val)
    Expr *IsLane0 = M.cmp(
        BinOp::EQ,
        M.arith(BinOp::Rem, M.special(SpecialReg::ThreadIdxX), M.constU(32)),
        M.constU(0));
    std::vector<Stmt *> Then = {M.create<AtomicGlobalStmt>(
        ReduceOp::Add, AtomicScope::Device, Out, M.constI(0), M.ref(Val))};
    K->getBody().push_back(
        M.create<IfStmt>(IsLane0, std::move(Then), std::vector<Stmt *>{}));
  }
};

TEST(SimtMachine, WarpShuffleReduction) {
  ShuffleReduceKernel B;
  std::vector<std::string> Errors;
  ASSERT_TRUE(verifyKernel(*B.K, Errors)) << Errors.front();

  CompiledKernel CK = compileKernel(*B.K);
  Device Dev;
  const unsigned N = 1000; // Not a multiple of the block size on purpose.
  BufferId InBuf = Dev.alloc(ScalarType::F32, N);
  BufferId OutBuf = Dev.alloc(ScalarType::F32, 1);
  std::vector<float> Data(N);
  double Expected = 0;
  for (unsigned I = 0; I != N; ++I) {
    Data[I] = static_cast<float>((I % 7) + 0.5);
    Expected += Data[I];
  }
  Dev.writeFloats(InBuf, Data);

  SimtMachine Machine(Dev, getKeplerK40c());
  unsigned Block = 128;
  unsigned Grid = (N + Block - 1) / Block;
  LaunchResult R = Machine.launch(
      CK, {Grid, Block, 0},
      {ArgValue::buffer(OutBuf), ArgValue::buffer(InBuf),
       ArgValue::scalar(N)});
  ASSERT_TRUE(R.ok()) << R.Errors.front();
  EXPECT_NEAR(Dev.readFloat(OutBuf, 0), Expected, Expected * 1e-5);
  EXPECT_GT(R.Stats.GlobalAtomicOps, 0u);
  // One atomic per warp, all to the same accumulator.
  EXPECT_EQ(R.Stats.GlobalAtomicHotOps, (N + 31) / 32);
}

/// Block-wide tree reduction through shared memory with barriers inside
/// the loop (the pattern of the paper's Listing 3 first stage).
struct SharedTreeReduceKernel {
  Module M;
  Kernel *K = nullptr;
  Param *Out = nullptr, *In = nullptr, *N = nullptr;

  SharedTreeReduceKernel() {
    K = M.addKernel("reduce_shared_tree");
    Out = K->addPointerParam("out", ScalarType::F32);
    In = K->addPointerParam("in", ScalarType::F32);
    N = K->addScalarParam("n", ScalarType::I32);

    SharedArray *Tmp = K->addSharedArray(
        "tmp", ScalarType::F32, M.special(SpecialReg::BlockDimX));

    Local *Tid = K->addLocal("tid", ScalarType::U32);
    K->getBody().push_back(
        M.create<DeclLocalStmt>(Tid, M.special(SpecialReg::ThreadIdxX)));
    Local *Gid = K->addLocal("gid", ScalarType::U32);
    K->getBody().push_back(M.create<DeclLocalStmt>(
        Gid, M.arith(BinOp::Add,
                     M.arith(BinOp::Mul, M.special(SpecialReg::BlockIdxX),
                             M.special(SpecialReg::BlockDimX)),
                     M.ref(Tid))));

    Expr *Loaded = M.create<SelectExpr>(
        M.cmp(BinOp::LT, M.ref(Gid), M.ref(N)),
        M.create<LoadGlobalExpr>(In, M.ref(Gid)), M.constF(0.0),
        ScalarType::F32);
    K->getBody().push_back(
        M.create<StoreSharedStmt>(Tmp, M.ref(Tid), Loaded));
    K->getBody().push_back(M.create<BarrierStmt>());

    // for (s = blockDim/2; s > 0; s /= 2) {
    //   if (tid < s) tmp[tid] += tmp[tid+s];
    //   barrier;
    // }
    Local *S = K->addLocal("s", ScalarType::U32);
    Expr *AddBoth = M.arith(
        BinOp::Add, M.create<LoadSharedExpr>(Tmp, M.ref(Tid)),
        M.create<LoadSharedExpr>(
            Tmp, M.arith(BinOp::Add, M.ref(Tid), M.ref(S))));
    std::vector<Stmt *> Guarded = {
        M.create<StoreSharedStmt>(Tmp, M.ref(Tid), AddBoth)};
    std::vector<Stmt *> LoopBody = {
        M.create<IfStmt>(M.cmp(BinOp::LT, M.ref(Tid), M.ref(S)),
                         std::move(Guarded), std::vector<Stmt *>{}),
        M.create<BarrierStmt>()};
    K->getBody().push_back(M.create<ForStmt>(
        S, M.arith(BinOp::Div, M.special(SpecialReg::BlockDimX), M.constU(2)),
        M.cmp(BinOp::GT, M.ref(S), M.constU(0)),
        M.arith(BinOp::Div, M.ref(S), M.constU(2)), std::move(LoopBody)));

    std::vector<Stmt *> Then = {M.create<StoreGlobalStmt>(
        Out, M.special(SpecialReg::BlockIdxX),
        M.create<LoadSharedExpr>(Tmp, M.constU(0)))};
    K->getBody().push_back(M.create<IfStmt>(
        M.cmp(BinOp::EQ, M.ref(Tid), M.constU(0)), std::move(Then),
        std::vector<Stmt *>{}));
  }
};

TEST(SimtMachine, SharedTreeReductionWithBarriers) {
  SharedTreeReduceKernel B;
  std::vector<std::string> Errors;
  ASSERT_TRUE(verifyKernel(*B.K, Errors)) << Errors.front();

  CompiledKernel CK = compileKernel(*B.K);
  Device Dev;
  const unsigned N = 512;
  const unsigned Block = 256;
  const unsigned Grid = 2;
  BufferId InBuf = Dev.alloc(ScalarType::F32, N);
  BufferId OutBuf = Dev.alloc(ScalarType::F32, Grid);
  std::vector<float> Data(N, 1.0f);
  Dev.writeFloats(InBuf, Data);

  SimtMachine Machine(Dev, getPascalP100());
  LaunchResult R = Machine.launch(
      CK, {Grid, Block, 0},
      {ArgValue::buffer(OutBuf), ArgValue::buffer(InBuf),
       ArgValue::scalar(N)});
  ASSERT_TRUE(R.ok()) << R.Errors.front();
  EXPECT_FLOAT_EQ(Dev.readFloat(OutBuf, 0), 256.0f);
  EXPECT_FLOAT_EQ(Dev.readFloat(OutBuf, 1), 256.0f);
  EXPECT_GT(R.Stats.Barriers, 0u);
  EXPECT_GT(R.Stats.DivergentBranches, 0u);
  EXPECT_EQ(R.SharedBytesPerBlock, Block * 4u);
}

TEST(SimtMachine, SharedAtomicContentionStats) {
  // All 64 threads atomically add into one shared accumulator; thread 0
  // publishes it. Contention must be visible in the stats and the Kepler
  // cost model must price it far above Maxwell's.
  Module M;
  Kernel *K = M.addKernel("atomic_shared");
  Param *Out = K->addPointerParam("out", ScalarType::I32);
  SharedArray *Accum = K->addSharedArray("acc", ScalarType::I32, M.constI(1));
  K->getBody().push_back(
      M.create<AtomicSharedStmt>(ReduceOp::Add, Accum, M.constI(0),
                                 M.constI(1)));
  K->getBody().push_back(M.create<BarrierStmt>());
  std::vector<Stmt *> Then = {M.create<StoreGlobalStmt>(
      Out, M.constI(0), M.create<LoadSharedExpr>(Accum, M.constI(0)))};
  K->getBody().push_back(M.create<IfStmt>(
      M.cmp(BinOp::EQ, M.special(SpecialReg::ThreadIdxX), M.constU(0)),
      std::move(Then), std::vector<Stmt *>{}));

  std::vector<std::string> Errors;
  ASSERT_TRUE(verifyKernel(*K, Errors)) << Errors.front();
  CompiledKernel CK = compileKernel(*K);

  auto RunOn = [&](const ArchDesc &Arch) {
    Device Dev;
    BufferId OutBuf = Dev.alloc(ScalarType::I32, 1);
    SimtMachine Machine(Dev, Arch);
    LaunchResult R =
        Machine.launch(CK, {1, 64, 0}, {ArgValue::buffer(OutBuf)});
    EXPECT_TRUE(R.ok());
    EXPECT_EQ(Dev.readInt(OutBuf, 0), 64);
    EXPECT_EQ(R.Stats.SharedAtomicOps, 64u);
    // 32 lanes of each warp hit the same address: 31 serialized extras.
    EXPECT_EQ(R.Stats.SharedAtomicConflicts, 62u);
    return R.Stats.WarpCycles;
  };

  double KeplerCycles = RunOn(getKeplerK40c());
  double MaxwellCycles = RunOn(getMaxwellGTX980());
  EXPECT_GT(KeplerCycles, 3.0 * MaxwellCycles)
      << "software-lock shared atomics must dominate Kepler's cost";
}

TEST(SimtMachine, SampledModeScalesStats) {
  DoubleKernel B;
  CompiledKernel CK = compileKernel(*B.K);
  const unsigned N = 1u << 16;
  const unsigned Block = 128;
  const unsigned Grid = N / Block; // 512 blocks > SampledBlocks.

  auto Run = [&](ExecMode Mode) {
    Device Dev;
    BufferId InBuf = Dev.alloc(ScalarType::I32, N);
    BufferId OutBuf = Dev.alloc(ScalarType::I32, N);
    std::vector<int> Data(N, 3);
    Dev.writeInts(InBuf, Data);
    SimtMachine Machine(Dev, getMaxwellGTX980());
    return Machine.launch(CK, {Grid, Block, 0},
                          {ArgValue::buffer(OutBuf), ArgValue::buffer(InBuf),
                           ArgValue::scalar(N)},
                          Mode);
  };

  LaunchResult Full = Run(ExecMode::Functional);
  LaunchResult Sampled = Run(ExecMode::Sampled);
  ASSERT_TRUE(Full.ok());
  ASSERT_TRUE(Sampled.ok());
  EXPECT_TRUE(Sampled.Sampled);
  EXPECT_LT(Sampled.BlocksSimulated, Grid);
  // Scaled statistics land within 2% of the full run (homogeneous grid).
  EXPECT_NEAR(Sampled.Stats.WarpCycles, Full.Stats.WarpCycles,
              Full.Stats.WarpCycles * 0.02);
  EXPECT_NEAR(static_cast<double>(Sampled.Stats.LaneInstructions),
              static_cast<double>(Full.Stats.LaneInstructions),
              static_cast<double>(Full.Stats.LaneInstructions) * 0.02);
}

TEST(SimtMachine, ReportsOutOfBoundsAccess) {
  Module M;
  Kernel *K = M.addKernel("oob");
  Param *Out = K->addPointerParam("out", ScalarType::I32);
  K->getBody().push_back(
      M.create<StoreGlobalStmt>(Out, M.constI(99), M.constI(7)));
  CompiledKernel CK = compileKernel(*K);

  Device Dev;
  BufferId OutBuf = Dev.alloc(ScalarType::I32, 4);
  SimtMachine Machine(Dev, getMaxwellGTX980());
  LaunchResult R = Machine.launch(CK, {1, 32, 0}, {ArgValue::buffer(OutBuf)});
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Errors.front().find("out of bounds"), std::string::npos);
}

TEST(PerfModel, OccupancyLimits) {
  const ArchDesc &Arch = getMaxwellGTX980();
  // 256-thread blocks, no shared memory, modest registers: thread-limited.
  Occupancy A = computeOccupancy(Arch, 256, 0, 16);
  EXPECT_EQ(A.BlocksPerSM, 8u); // 2048 / 256.
  // 48KB shared per block: shared-limited to 2 on a 96KB SM.
  Occupancy B = computeOccupancy(Arch, 256, 48 * 1024, 16);
  EXPECT_EQ(B.BlocksPerSM, 2u);
  // Over the per-block shared limit: not launchable.
  Occupancy C = computeOccupancy(Arch, 256, 64 * 1024, 16);
  EXPECT_FALSE(C.viable());
  // Shared footprint of zero (shuffle variants) restores full occupancy.
  EXPECT_GT(A.Fraction, B.Fraction);
}

TEST(PerfModel, LaunchOverheadDominatesTinyGrids) {
  DoubleKernel B;
  CompiledKernel CK = compileKernel(*B.K);
  Device Dev;
  BufferId InBuf = Dev.alloc(ScalarType::I32, 64);
  BufferId OutBuf = Dev.alloc(ScalarType::I32, 64);
  SimtMachine Machine(Dev, getPascalP100());
  LaunchResult R = Machine.launch(CK, {1, 64, 0},
                                  {ArgValue::buffer(OutBuf),
                                   ArgValue::buffer(InBuf),
                                   ArgValue::scalar(64)});
  ASSERT_TRUE(R.ok());
  KernelTiming T = modelKernelTime(getPascalP100(), R);
  EXPECT_GT(T.OverheadSeconds, T.ComputeSeconds);
  EXPECT_GT(T.TotalSeconds, T.OverheadSeconds);
}

TEST(PerfModel, VectorLoadsBeatScalarLoadsAtLargeN) {
  // Two synthetic launch results moving the same bytes, one scalar, one
  // vectorized: the vector stream must model faster.
  LaunchResult Scalar;
  Scalar.GridDim = 4096;
  Scalar.BlockDim = 256;
  Scalar.RegistersPerThread = 16;
  Scalar.Stats.GlobalLoadBytesScalar = 1ull << 30;
  LaunchResult Vector = Scalar;
  Vector.Stats.GlobalLoadBytesScalar = 0;
  Vector.Stats.GlobalLoadBytesVector = 1ull << 30;

  const ArchDesc &Arch = getKeplerK40c();
  double ScalarTime = modelKernelTime(Arch, Scalar).TotalSeconds;
  double VectorTime = modelKernelTime(Arch, Vector).TotalSeconds;
  EXPECT_GT(ScalarTime, VectorTime * 1.2);
}

} // namespace
