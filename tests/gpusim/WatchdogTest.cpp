//===- WatchdogTest.cpp - Cycle-budget watchdog + fault injector tests ------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// Every launch carries a finite warp-instruction budget: a hand-built
// livelocked kernel must trap with DeadlineExceeded under the *default*
// budget (no explicit configuration), and the deterministic fault injector
// must fire reproducibly for a given plan.
//
//===----------------------------------------------------------------------===//

#include "gpusim/FaultInjector.h"
#include "gpusim/SimtMachine.h"
#include "ir/Bytecode.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace tangram;
using namespace tangram::ir;
using namespace tangram::sim;

namespace {

/// Builds `for (unsigned i = 0; i < 1; i = i * 0) out[0] = i;` — the
/// induction variable never advances, so the loop never exits: the shape
/// of a livelocked software-lock spin (Kepler's shared-atomic emulation).
struct LivelockKernel {
  Module M;
  Kernel *K = nullptr;
  Param *Out = nullptr;

  LivelockKernel() {
    K = M.addKernel("livelock");
    Out = K->addPointerParam("out", ScalarType::I32);
    Local *I = K->addLocal("i", ScalarType::U32);
    std::vector<Stmt *> Body = {
        M.create<StoreGlobalStmt>(Out, M.constI(0), M.ref(I))};
    K->getBody().push_back(M.create<ForStmt>(
        I, M.constI(0), M.cmp(BinOp::LT, M.ref(I), M.constI(1)),
        M.arith(BinOp::Mul, M.ref(I), M.constI(0)), std::move(Body)));
  }
};

TEST(Watchdog, DefaultBudgetTrapsLivelock) {
  LivelockKernel B;
  std::vector<std::string> Errors;
  ASSERT_TRUE(verifyKernel(*B.K, Errors)) << Errors.front();
  CompiledKernel CK = compileKernel(*B.K);

  Device Dev;
  BufferId OutBuf = Dev.alloc(ScalarType::I32, 1);
  SimtMachine Machine(Dev, getKeplerK40c());

  // MaxWarpInstructions stays 0: the machine must derive a finite default.
  LaunchConfig Config{/*GridDim=*/1, /*BlockDim=*/32, 0};
  LaunchResult R =
      Machine.launch(CK, Config, {ArgValue::buffer(OutBuf)});

  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(R.DeadlineExceeded);
  ASSERT_FALSE(R.Errors.empty());
  EXPECT_NE(R.Errors.front().find("deadline"), std::string::npos)
      << R.Errors.front();
}

TEST(Watchdog, ExplicitBudgetIsHonored) {
  LivelockKernel B;
  CompiledKernel CK = compileKernel(*B.K);
  Device Dev;
  BufferId OutBuf = Dev.alloc(ScalarType::I32, 1);
  SimtMachine Machine(Dev, getPascalP100());

  LaunchConfig Config{1, 32, 0};
  Config.MaxWarpInstructions = 256; // trips far faster than the default
  LaunchResult R =
      Machine.launch(CK, Config, {ArgValue::buffer(OutBuf)});
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(R.DeadlineExceeded);
}

TEST(Watchdog, HealthyKernelStaysUnderDefaultBudget) {
  // A terminating kernel must never trip the derived default budget.
  Module M;
  Kernel *K = M.addKernel("store_one");
  Param *Out = K->addPointerParam("out", ScalarType::I32);
  K->getBody().push_back(
      M.create<StoreGlobalStmt>(Out, M.constI(0), M.constI(1)));
  CompiledKernel CK = compileKernel(*K);

  Device Dev;
  BufferId OutBuf = Dev.alloc(ScalarType::I32, 1);
  SimtMachine Machine(Dev, getMaxwellGTX980());
  LaunchConfig Config{4, 128, 0};
  LaunchResult R = Machine.launch(CK, Config, {ArgValue::buffer(OutBuf)});
  EXPECT_TRUE(R.ok());
  EXPECT_FALSE(R.DeadlineExceeded);
  EXPECT_EQ(Dev.readInt(OutBuf, 0), 1);
}

TEST(FaultInjector, FiresAreDeterministicPerPlan) {
  FaultPlan Plan;
  Plan.Kind = FaultKind::BitFlipGlobal;
  Plan.Seed = 42;
  Plan.Period = 3;

  // Two injectors over the same event stream agree event for event.
  FaultInjector A(Plan), B(Plan);
  unsigned Fired = 0;
  for (unsigned I = 0; I != 300; ++I) {
    bool FA = A.fires(FaultKind::BitFlipGlobal);
    EXPECT_EQ(FA, B.fires(FaultKind::BitFlipGlobal));
    Fired += FA;
  }
  EXPECT_EQ(A.getFireCount(), Fired);
  // Period 3 over 300 events: roughly a third fire; the hash is not a
  // strict modulus over ordinals, so allow slack.
  EXPECT_GT(Fired, 50u);
  EXPECT_LT(Fired, 200u);
}

TEST(FaultInjector, MismatchedKindNeverFires) {
  FaultPlan Plan;
  Plan.Kind = FaultKind::DropAtomic;
  Plan.Period = 1;
  FaultInjector Inj(Plan);
  for (unsigned I = 0; I != 64; ++I)
    EXPECT_FALSE(Inj.fires(FaultKind::BitFlipShared));
  EXPECT_EQ(Inj.getFireCount(), 0u);
}

TEST(FaultInjector, CorruptFlipsExactlyOneIntBit) {
  FaultPlan Plan;
  Plan.Kind = FaultKind::BitFlipGlobal;
  Plan.Seed = 7;
  FaultInjector Inj(Plan);
  Cell V;
  V.I = 12345;
  Cell Out = Inj.corrupt(V, ir::ScalarType::I32);
  long long Diff = Out.I ^ V.I;
  EXPECT_NE(Diff, 0);
  EXPECT_EQ(Diff & (Diff - 1), 0) << "more than one bit flipped";
}

TEST(FaultInjector, KindNamesRoundTrip) {
  unsigned Count = 0;
  const FaultKind *All = getAllFaultKinds(Count);
  ASSERT_GE(Count, 6u);
  for (unsigned I = 0; I != Count; ++I) {
    FaultKind K = FaultKind::None;
    ASSERT_TRUE(parseFaultKind(getFaultKindName(All[I]), K))
        << getFaultKindName(All[I]);
    EXPECT_EQ(K, All[I]);
  }
  FaultKind K;
  EXPECT_FALSE(parseFaultKind("not-a-fault", K));
}

} // namespace
