//===- IRTest.cpp - Kernel IR, verifier, bytecode tests ----------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "ir/Bytecode.h"
#include "ir/KernelIR.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace tangram;
using namespace tangram::ir;

namespace {

TEST(KernelIR, TypePromotion) {
  EXPECT_EQ(promoteTypes(ScalarType::I32, ScalarType::I32), ScalarType::I32);
  EXPECT_EQ(promoteTypes(ScalarType::I32, ScalarType::U32), ScalarType::U32);
  EXPECT_EQ(promoteTypes(ScalarType::U32, ScalarType::F32), ScalarType::F32);
  EXPECT_EQ(promoteTypes(ScalarType::F32, ScalarType::I32), ScalarType::F32);
}

TEST(KernelIR, KernelEntityRegistration) {
  Module M;
  Kernel *K = M.addKernel("k");
  Param *P0 = K->addPointerParam("out", ScalarType::F32);
  Param *P1 = K->addScalarParam("n", ScalarType::I32);
  EXPECT_EQ(P0->Index, 0u);
  EXPECT_EQ(P1->Index, 1u);
  EXPECT_TRUE(P0->IsPointer);
  EXPECT_FALSE(P1->IsPointer);
  SharedArray *A = K->addSharedArray("tmp", ScalarType::F32, M.constI(32));
  EXPECT_EQ(A->Id, 0u);
  Local *L = K->addLocal("v", ScalarType::F32);
  EXPECT_EQ(L->Id, 0u);
  EXPECT_EQ(M.getKernel("k"), K);
  EXPECT_EQ(M.getKernel("missing"), nullptr);
}

TEST(KernelIR, RegisterEstimateGrowsWithLocals) {
  Module M;
  Kernel *K = M.addKernel("k");
  unsigned Base = K->getRegisterEstimate();
  K->addLocal("a", ScalarType::I32);
  K->addLocal("b", ScalarType::I32);
  EXPECT_EQ(K->getRegisterEstimate(), Base + 2);
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

TEST(Verifier, RejectsForeignLocal) {
  Module M;
  Kernel *K1 = M.addKernel("k1");
  Kernel *K2 = M.addKernel("k2");
  Local *Foreign = K2->addLocal("x", ScalarType::I32);
  K1->getBody().push_back(M.create<DeclLocalStmt>(Foreign, M.constI(0)));
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyKernel(*K1, Errors));
  EXPECT_NE(Errors.front().find("another kernel"), std::string::npos);
}

TEST(Verifier, RejectsUseBeforeDecl) {
  Module M;
  Kernel *K = M.addKernel("k");
  Local *X = K->addLocal("x", ScalarType::I32);
  Local *Y = K->addLocal("y", ScalarType::I32);
  K->getBody().push_back(M.create<DeclLocalStmt>(Y, M.ref(X)));
  K->getBody().push_back(M.create<DeclLocalStmt>(X, M.constI(0)));
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyKernel(*K, Errors));
  EXPECT_NE(Errors.front().find("before its declaration"),
            std::string::npos);
}

TEST(Verifier, RejectsBarrierInDivergentIf) {
  Module M;
  Kernel *K = M.addKernel("k");
  std::vector<Stmt *> Then = {M.create<BarrierStmt>()};
  K->getBody().push_back(M.create<IfStmt>(
      M.cmp(BinOp::EQ, M.special(SpecialReg::ThreadIdxX), M.constU(0)),
      std::move(Then), std::vector<Stmt *>{}));
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyKernel(*K, Errors));
  EXPECT_NE(Errors.front().find("divergent"), std::string::npos);
}

TEST(Verifier, AllowsBarrierInUniformIf) {
  Module M;
  Kernel *K = M.addKernel("k");
  Param *N = K->addScalarParam("n", ScalarType::I32);
  std::vector<Stmt *> Then = {M.create<BarrierStmt>()};
  K->getBody().push_back(M.create<IfStmt>(
      M.cmp(BinOp::GT, M.ref(N), M.constI(32)), std::move(Then),
      std::vector<Stmt *>{}));
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyKernel(*K, Errors)) << Errors.front();
}

TEST(Verifier, RejectsBarrierInThreadDependentLoop) {
  Module M;
  Kernel *K = M.addKernel("k");
  Local *I = K->addLocal("i", ScalarType::U32);
  std::vector<Stmt *> Body = {M.create<BarrierStmt>()};
  K->getBody().push_back(M.create<ForStmt>(
      I, M.special(SpecialReg::ThreadIdxX),
      M.cmp(BinOp::LT, M.ref(I), M.constU(64)),
      M.arith(BinOp::Add, M.ref(I), M.constU(1)), std::move(Body)));
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyKernel(*K, Errors));
  EXPECT_NE(Errors.front().find("thread-dependent trip count"),
            std::string::npos);
}

TEST(Verifier, RejectsFloatRemainder) {
  Module M;
  Kernel *K = M.addKernel("k");
  Local *X = K->addLocal("x", ScalarType::F32);
  K->getBody().push_back(M.create<DeclLocalStmt>(
      X, M.binary(BinOp::Rem, M.constF(1.0), M.constF(2.0),
                  ScalarType::F32)));
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyKernel(*K, Errors));
}

TEST(Verifier, RejectsBadShuffleWidth) {
  Module M;
  Kernel *K = M.addKernel("k");
  Local *X = K->addLocal("x", ScalarType::F32);
  K->getBody().push_back(M.create<DeclLocalStmt>(X, M.constF(0.0)));
  K->getBody().push_back(M.create<AssignStmt>(
      X, M.create<ShuffleExpr>(ShuffleMode::Down, M.ref(X), M.constI(1),
                               /*Width=*/20)));
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyKernel(*K, Errors));
  EXPECT_NE(Errors.front().find("power of two"), std::string::npos);
}

TEST(Verifier, RejectsScalarUseOfPointerParam) {
  Module M;
  Kernel *K = M.addKernel("k");
  Param *P = K->addPointerParam("buf", ScalarType::F32);
  Local *X = K->addLocal("x", ScalarType::F32);
  K->getBody().push_back(M.create<DeclLocalStmt>(X, M.ref(P)));
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyKernel(*K, Errors));
}

TEST(Verifier, RejectsVectorLoadWidth3) {
  Module M;
  Kernel *K = M.addKernel("k");
  Param *P = K->addPointerParam("buf", ScalarType::F32);
  Local *X = K->addLocal("x", ScalarType::F32);
  K->getBody().push_back(M.create<DeclLocalStmt>(
      X, M.create<LoadGlobalExpr>(P, M.constI(0), /*VectorWidth=*/3)));
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyKernel(*K, Errors));
}

//===----------------------------------------------------------------------===//
// Bytecode compiler
//===----------------------------------------------------------------------===//

TEST(Bytecode, IfTargetsArePatched) {
  Module M;
  Kernel *K = M.addKernel("k");
  Local *X = K->addLocal("x", ScalarType::I32);
  K->getBody().push_back(M.create<DeclLocalStmt>(X, M.constI(0)));
  std::vector<Stmt *> Then = {M.create<AssignStmt>(X, M.constI(1))};
  std::vector<Stmt *> Else = {M.create<AssignStmt>(X, M.constI(2))};
  K->getBody().push_back(M.create<IfStmt>(
      M.cmp(BinOp::EQ, M.special(SpecialReg::ThreadIdxX), M.constU(0)),
      std::move(Then), std::move(Else)));
  CompiledKernel CK = compileKernel(*K);

  // Find PushIf / ElseIf and validate the skip targets.
  int PushIdx = -1, ElseIdx = -1, PopIdx = -1;
  for (size_t I = 0; I != CK.Code.size(); ++I) {
    if (CK.Code[I].Op == Opcode::PushIf)
      PushIdx = static_cast<int>(I);
    if (CK.Code[I].Op == Opcode::ElseIf)
      ElseIdx = static_cast<int>(I);
    if (CK.Code[I].Op == Opcode::PopIf)
      PopIdx = static_cast<int>(I);
  }
  ASSERT_GE(PushIdx, 0);
  ASSERT_GT(ElseIdx, PushIdx);
  ASSERT_GT(PopIdx, ElseIdx);
  EXPECT_EQ(CK.Code[PushIdx].Target, static_cast<uint32_t>(ElseIdx));
  EXPECT_EQ(CK.Code[ElseIdx].Target, static_cast<uint32_t>(PopIdx));
}

TEST(Bytecode, LoopShapeAndBackEdge) {
  Module M;
  Kernel *K = M.addKernel("k");
  Local *I = K->addLocal("i", ScalarType::I32);
  Local *S = K->addLocal("s", ScalarType::I32);
  K->getBody().push_back(M.create<DeclLocalStmt>(S, M.constI(0)));
  std::vector<Stmt *> Body = {
      M.create<AssignStmt>(S, M.arith(BinOp::Add, M.ref(S), M.ref(I)))};
  K->getBody().push_back(M.create<ForStmt>(
      I, M.constI(0), M.cmp(BinOp::LT, M.ref(I), M.constI(4)),
      M.arith(BinOp::Add, M.ref(I), M.constI(1)), std::move(Body)));
  CompiledKernel CK = compileKernel(*K);

  int LoopTestIdx = -1, JumpIdx = -1, PushLoopIdx = -1;
  for (size_t Idx = 0; Idx != CK.Code.size(); ++Idx) {
    if (CK.Code[Idx].Op == Opcode::PushLoop)
      PushLoopIdx = static_cast<int>(Idx);
    if (CK.Code[Idx].Op == Opcode::LoopTest)
      LoopTestIdx = static_cast<int>(Idx);
    if (CK.Code[Idx].Op == Opcode::Jump)
      JumpIdx = static_cast<int>(Idx);
  }
  ASSERT_GE(PushLoopIdx, 0);
  ASSERT_GT(LoopTestIdx, PushLoopIdx);
  ASSERT_GT(JumpIdx, LoopTestIdx);
  // The back-edge jumps to the condition evaluation (after PushLoop); the
  // loop exit lands after the back-edge.
  EXPECT_EQ(CK.Code[JumpIdx].Target,
            static_cast<uint32_t>(PushLoopIdx + 1));
  EXPECT_EQ(CK.Code[LoopTestIdx].Target,
            static_cast<uint32_t>(JumpIdx + 1));
}

TEST(Bytecode, ScalarParamRegistersAssigned) {
  Module M;
  Kernel *K = M.addKernel("k");
  K->addPointerParam("out", ScalarType::F32);
  Param *N = K->addScalarParam("n", ScalarType::I32);
  Param *C = K->addScalarParam("c", ScalarType::I32);
  Local *X = K->addLocal("x", ScalarType::I32);
  K->getBody().push_back(M.create<DeclLocalStmt>(
      X, M.arith(BinOp::Add, M.ref(N), M.ref(C))));
  CompiledKernel CK = compileKernel(*K);
  ASSERT_EQ(CK.ScalarParamRegs.size(), 2u);
  // Distinct registers, both inside the register file.
  EXPECT_NE(CK.ScalarParamRegs[0].second, CK.ScalarParamRegs[1].second);
  for (const auto &[P, Reg] : CK.ScalarParamRegs) {
    EXPECT_FALSE(P->IsPointer);
    EXPECT_LT(Reg, CK.NumRegisters);
  }
}

TEST(Bytecode, DisassembleMentionsOpcodes) {
  Module M;
  Kernel *K = M.addKernel("k");
  Param *Out = K->addPointerParam("out", ScalarType::F32);
  K->getBody().push_back(
      M.create<StoreGlobalStmt>(Out, M.constI(0), M.constF(1.5)));
  CompiledKernel CK = compileKernel(*K);
  std::string Text = CK.disassemble();
  EXPECT_NE(Text.find(".kernel k"), std::string::npos);
  EXPECT_NE(Text.find("st.global"), std::string::npos);
  EXPECT_NE(Text.find("exit"), std::string::npos);
}

TEST(Bytecode, EndsWithExit) {
  Module M;
  Kernel *K = M.addKernel("k");
  CompiledKernel CK = compileKernel(*K);
  ASSERT_FALSE(CK.Code.empty());
  EXPECT_EQ(CK.Code.back().Op, Opcode::Exit);
}

} // namespace
