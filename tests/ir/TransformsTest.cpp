//===- TransformsTest.cpp - Kernel-IR optimization pass tests ----------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// The future-work passes (warp-aggregated atomics, constant-trip loop
// unrolling) must preserve semantics: every test runs the kernel before
// and after the transform and compares device state, then checks the
// structural effect (fewer atomics / no loop ops).
//
//===----------------------------------------------------------------------===//

#include "ir/Transforms.h"

#include "engine/ExecutionEngine.h"
#include "gpusim/SimtMachine.h"
#include "ir/Bytecode.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace tangram;
using namespace tangram::ir;
using namespace tangram::sim;

namespace {

/// Builds the (n)-style kernel: every thread atomically accumulates its
/// value into one shared slot; thread 0 publishes via a global atomic.
struct AllThreadsAtomicKernel {
  Module M;
  Kernel *K;
  Param *Out, *In, *N;

  AllThreadsAtomicKernel() {
    K = M.addKernel("atomic_all");
    Out = K->addPointerParam("out", ScalarType::F32);
    In = K->addPointerParam("in", ScalarType::F32);
    N = K->addScalarParam("n", ScalarType::I32);
    SharedArray *Acc = K->addSharedArray("acc", ScalarType::F32, M.constI(1));

    Local *Tid = K->addLocal("tid", ScalarType::U32);
    K->getBody().push_back(M.create<DeclLocalStmt>(
        Tid, M.arith(BinOp::Add,
                     M.arith(BinOp::Mul, M.special(SpecialReg::BlockIdxX),
                             M.special(SpecialReg::BlockDimX)),
                     M.special(SpecialReg::ThreadIdxX))));
    Local *Val = K->addLocal("val", ScalarType::F32);
    K->getBody().push_back(M.create<DeclLocalStmt>(
        Val, M.create<SelectExpr>(
                 M.cmp(BinOp::LT, M.ref(Tid), M.ref(N)),
                 M.create<LoadGlobalExpr>(In, M.ref(Tid)), M.constF(0.0),
                 ScalarType::F32)));
    K->getBody().push_back(M.create<AtomicSharedStmt>(
        ReduceOp::Add, Acc, M.constI(0), M.ref(Val)));
    K->getBody().push_back(M.create<BarrierStmt>());
    std::vector<Stmt *> Then = {M.create<AtomicGlobalStmt>(
        ReduceOp::Add, AtomicScope::Device, Out, M.constI(0),
        M.create<LoadSharedExpr>(Acc, M.constI(0)))};
    K->getBody().push_back(M.create<IfStmt>(
        M.cmp(BinOp::EQ, M.special(SpecialReg::ThreadIdxX), M.constU(0)),
        std::move(Then), std::vector<Stmt *>{}));
  }
};

double runSum(const CompiledKernel &CK, const ArchDesc &Arch, unsigned N,
              ExecStats *StatsOut = nullptr) {
  engine::ExecutionEngine E(Arch);
  Device &Dev = E.getDevice();
  BufferId In = Dev.alloc(ScalarType::F32, N);
  std::vector<float> Data(N);
  for (unsigned I = 0; I != N; ++I)
    Data[I] = static_cast<float>((I % 13) - 6) * 0.5f;
  Dev.writeFloats(In, Data);
  BufferId Out = Dev.alloc(ScalarType::F32, 1);
  LaunchResult R = E.launch(
      CK, {(N + 255) / 256, 256, 0},
      {ArgValue::buffer(Out), ArgValue::buffer(In), ArgValue::scalar(N)});
  EXPECT_TRUE(R.ok()) << (R.Errors.empty() ? "" : R.Errors.front());
  if (StatsOut)
    *StatsOut = R.Stats;
  return Dev.readFloat(Out, 0);
}

TEST(AggregateAtomics, PreservesSemantics) {
  AllThreadsAtomicKernel Plain;
  double Before = runSum(compileKernel(*Plain.K), getKeplerK40c(), 10000);

  AllThreadsAtomicKernel Opt;
  TransformStats Stats = aggregateAtomics(Opt.M, *Opt.K);
  EXPECT_EQ(Stats.AtomicsAggregated, 1u); // The shared atomic.
  std::vector<std::string> Errors;
  ASSERT_TRUE(verifyKernel(*Opt.K, Errors)) << Errors.front();
  double After = runSum(compileKernel(*Opt.K), getKeplerK40c(), 10000);
  EXPECT_NEAR(Before, After, 1e-3);
}

TEST(AggregateAtomics, ReducesAtomicTrafficAndKeplerCycles) {
  AllThreadsAtomicKernel Plain, Opt;
  aggregateAtomics(Opt.M, *Opt.K);

  ExecStats PlainStats, OptStats;
  runSum(compileKernel(*Plain.K), getKeplerK40c(), 65536, &PlainStats);
  runSum(compileKernel(*Opt.K), getKeplerK40c(), 65536, &OptStats);

  // 32x fewer shared-atomic lane updates and no intra-warp conflicts.
  EXPECT_LT(OptStats.SharedAtomicOps * 16, PlainStats.SharedAtomicOps);
  EXPECT_EQ(OptStats.SharedAtomicConflicts, 0u);
  // On Kepler (lock-loop atomics) the rewrite pays off overall.
  EXPECT_LT(OptStats.WarpCycles, PlainStats.WarpCycles);
}

TEST(AggregateAtomics, SkipsLaneDependentAddresses) {
  // Histogram-style update: address depends on the lane; aggregation
  // must not fire.
  Module M;
  Kernel *K = M.addKernel("hist");
  SharedArray *Bins = K->addSharedArray("bins", ScalarType::I32,
                                        M.constI(32));
  K->getBody().push_back(M.create<AtomicSharedStmt>(
      ReduceOp::Add, Bins,
      M.binary(BinOp::Rem, M.special(SpecialReg::ThreadIdxX),
               M.constU(32), ScalarType::U32),
      M.constI(1)));
  TransformStats Stats = aggregateAtomics(M, *K);
  EXPECT_EQ(Stats.AtomicsAggregated, 0u);
}

TEST(AggregateAtomics, SkipsDivergentRegions) {
  AllThreadsAtomicKernel Fixture;
  // Wrap a fresh atomic inside a thread-dependent if: not eligible.
  Module &M = Fixture.M;
  Kernel *K = Fixture.K;
  SharedArray *Acc = K->getSharedArrays()[0].get();
  std::vector<Stmt *> Then = {M.create<AtomicSharedStmt>(
      ReduceOp::Add, Acc, M.constI(0), M.constF(1.0))};
  K->getBody().push_back(M.create<IfStmt>(
      M.cmp(BinOp::LT, M.special(SpecialReg::ThreadIdxX), M.constU(7)),
      std::move(Then), std::vector<Stmt *>{}));
  TransformStats Stats = aggregateAtomics(M, *K);
  // Only the top-level shared atomic is eligible; both the original
  // global atomic (under `if (tid == 0)`) and the new one are divergent.
  EXPECT_EQ(Stats.AtomicsAggregated, 1u);
}

//===----------------------------------------------------------------------===//
// Loop unrolling
//===----------------------------------------------------------------------===//

/// Shuffle-tree kernel: for (o=16;o>0;o/=2) val += shfl_down(val,o).
struct ShuffleTreeKernel {
  Module M;
  Kernel *K;
  Param *Out, *In, *N;

  ShuffleTreeKernel() {
    K = M.addKernel("shfl_tree");
    Out = K->addPointerParam("out", ScalarType::F32);
    In = K->addPointerParam("in", ScalarType::F32);
    N = K->addScalarParam("n", ScalarType::I32);
    Local *Tid = K->addLocal("tid", ScalarType::U32);
    K->getBody().push_back(M.create<DeclLocalStmt>(
        Tid, M.arith(BinOp::Add,
                     M.arith(BinOp::Mul, M.special(SpecialReg::BlockIdxX),
                             M.special(SpecialReg::BlockDimX)),
                     M.special(SpecialReg::ThreadIdxX))));
    Local *Val = K->addLocal("val", ScalarType::F32);
    K->getBody().push_back(M.create<DeclLocalStmt>(
        Val, M.create<SelectExpr>(
                 M.cmp(BinOp::LT, M.ref(Tid), M.ref(N)),
                 M.create<LoadGlobalExpr>(In, M.ref(Tid)), M.constF(0.0),
                 ScalarType::F32)));
    Local *Off = K->addLocal("offset", ScalarType::I32);
    std::vector<Stmt *> Body = {M.create<AssignStmt>(
        Val, M.binary(BinOp::Add, M.ref(Val),
                      M.create<ShuffleExpr>(ShuffleMode::Down, M.ref(Val),
                                            M.ref(Off), 32),
                      ScalarType::F32))};
    K->getBody().push_back(M.create<ForStmt>(
        Off, M.constI(16), M.cmp(BinOp::GT, M.ref(Off), M.constI(0)),
        M.arith(BinOp::Div, M.ref(Off), M.constI(2)), std::move(Body)));
    std::vector<Stmt *> Then = {M.create<AtomicGlobalStmt>(
        ReduceOp::Add, AtomicScope::Device, Out, M.constI(0), M.ref(Val))};
    K->getBody().push_back(M.create<IfStmt>(
        M.cmp(BinOp::EQ,
              M.binary(BinOp::Rem, M.special(SpecialReg::ThreadIdxX),
                       M.special(SpecialReg::WarpSize), ScalarType::U32),
              M.constU(0)),
        std::move(Then), std::vector<Stmt *>{}));
  }
};

TEST(UnrollLoops, FullyUnrollsShuffleTree) {
  ShuffleTreeKernel Fixture;
  TransformStats Stats = unrollConstantLoops(Fixture.M, *Fixture.K);
  EXPECT_EQ(Stats.LoopsUnrolled, 1u);
  EXPECT_EQ(Stats.IterationsExpanded, 5u); // 16,8,4,2,1.
  std::vector<std::string> Errors;
  ASSERT_TRUE(verifyKernel(*Fixture.K, Errors)) << Errors.front();
  CompiledKernel CK = compileKernel(*Fixture.K);
  for (const Instr &I : CK.Code) {
    EXPECT_NE(I.Op, Opcode::PushLoop);
    EXPECT_NE(I.Op, Opcode::LoopTest);
  }
}

TEST(UnrollLoops, PreservesSemanticsAndCutsInstructions) {
  ShuffleTreeKernel Plain, Opt;
  unrollConstantLoops(Opt.M, *Opt.K);
  ExecStats PlainStats, OptStats;
  double Before =
      runSum(compileKernel(*Plain.K), getMaxwellGTX980(), 4096, &PlainStats);
  double After =
      runSum(compileKernel(*Opt.K), getMaxwellGTX980(), 4096, &OptStats);
  EXPECT_NEAR(Before, After, 1e-3);
  EXPECT_LT(OptStats.LaneInstructions, PlainStats.LaneInstructions);
}

TEST(UnrollLoops, SkipsDataDependentBounds) {
  Module M;
  Kernel *K = M.addKernel("k");
  Param *N = K->addScalarParam("n", ScalarType::I32);
  Local *I = K->addLocal("i", ScalarType::I32);
  Local *S = K->addLocal("s", ScalarType::I32);
  K->getBody().push_back(M.create<DeclLocalStmt>(S, M.constI(0)));
  std::vector<Stmt *> Body = {
      M.create<AssignStmt>(S, M.arith(BinOp::Add, M.ref(S), M.ref(I)))};
  K->getBody().push_back(M.create<ForStmt>(
      I, M.constI(0), M.cmp(BinOp::LT, M.ref(I), M.ref(N)),
      M.arith(BinOp::Add, M.ref(I), M.constI(1)), std::move(Body)));
  TransformStats Stats = unrollConstantLoops(M, *K);
  EXPECT_EQ(Stats.LoopsUnrolled, 0u);
}

TEST(UnrollLoops, RespectsMaxTrips) {
  Module M;
  Kernel *K = M.addKernel("k");
  Local *I = M.getKernel("k")->addLocal("i", ScalarType::I32);
  Local *S = K->addLocal("s", ScalarType::I32);
  K->getBody().push_back(M.create<DeclLocalStmt>(S, M.constI(0)));
  std::vector<Stmt *> Body = {
      M.create<AssignStmt>(S, M.arith(BinOp::Add, M.ref(S), M.constI(1)))};
  K->getBody().push_back(M.create<ForStmt>(
      I, M.constI(0), M.cmp(BinOp::LT, M.ref(I), M.constI(100)),
      M.arith(BinOp::Add, M.ref(I), M.constI(1)), std::move(Body)));
  EXPECT_EQ(unrollConstantLoops(M, *K, 8).LoopsUnrolled, 0u);
  EXPECT_EQ(unrollConstantLoops(M, *K, 128).LoopsUnrolled, 1u);
}

TEST(UnrollLoops, ZeroTripLoopLeavesPostValue) {
  Module M;
  Kernel *K = M.addKernel("k");
  Param *Out = K->addPointerParam("out", ScalarType::I32);
  Local *I = K->addLocal("i", ScalarType::I32);
  std::vector<Stmt *> Body = {}; // Never runs: 5 < 3 is false.
  K->getBody().push_back(M.create<ForStmt>(
      I, M.constI(5), M.cmp(BinOp::LT, M.ref(I), M.constI(3)),
      M.arith(BinOp::Add, M.ref(I), M.constI(1)), std::move(Body)));
  K->getBody().push_back(
      M.create<StoreGlobalStmt>(Out, M.constI(0), M.ref(I)));
  TransformStats Stats = unrollConstantLoops(M, *K);
  EXPECT_EQ(Stats.LoopsUnrolled, 1u);
  EXPECT_EQ(Stats.IterationsExpanded, 0u);

  engine::ExecutionEngine E(getMaxwellGTX980());
  BufferId OutBuf = E.getDevice().alloc(ScalarType::I32, 1);
  LaunchResult R = E.launch(compileKernel(*K), {1, 32, 0},
                            {ArgValue::buffer(OutBuf)});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(E.getDevice().readInt(OutBuf, 0), 5);
}

TEST(Combined, AggregationPlusUnrollStillCorrect) {
  AllThreadsAtomicKernel Fixture;
  aggregateAtomics(Fixture.M, *Fixture.K);
  unrollConstantLoops(Fixture.M, *Fixture.K);
  std::vector<std::string> Errors;
  ASSERT_TRUE(verifyKernel(*Fixture.K, Errors)) << Errors.front();
  AllThreadsAtomicKernel Plain;
  double Before = runSum(compileKernel(*Plain.K), getPascalP100(), 33333);
  double After = runSum(compileKernel(*Fixture.K), getPascalP100(), 33333);
  EXPECT_NEAR(Before, After, 1e-3);
}

} // namespace
