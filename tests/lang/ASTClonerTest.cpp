//===- ASTClonerTest.cpp - AST deep-copy tests --------------------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// The synthesizer relies on per-variant clones (the Fig. 5 variant loop);
// clones must be structurally identical, carry the resolved semantic
// information, and be fully isolated from the original.
//
//===----------------------------------------------------------------------===//

#include "lang/ASTCloner.h"

#include "lang/ASTPrinter.h"
#include "lang/ASTVisitor.h"
#include "lang/Parser.h"
#include "sema/Sema.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "synth/ReductionSpectrum.h"
#include "transforms/GlobalAtomicMapPass.h"
#include "transforms/WarpShuffleDetect.h"

#include <gtest/gtest.h>

using namespace tangram;
using namespace tangram::lang;

namespace {

struct Fixture {
  std::unique_ptr<SourceManager> SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::unique_ptr<ASTContext> Ctx;
  TranslationUnit TU;

  Fixture() {
    SM = std::make_unique<SourceManager>("r.tgr",
                                         synth::getReductionSource());
    Diags = std::make_unique<DiagnosticEngine>(*SM);
    Ctx = std::make_unique<ASTContext>();
    Parser P(*SM, *Ctx, *Diags);
    TU = P.parseTranslationUnit();
    sema::Sema S(*Ctx, *Diags);
    EXPECT_TRUE(S.analyze(TU)) << Diags->renderAll();
  }
};

TEST(ASTCloner, ClonePrintsIdentically) {
  Fixture F;
  ASTCloner Cloner(*F.Ctx);
  for (CodeletDecl *C : F.TU.Codelets) {
    CodeletDecl *Clone = Cloner.clone(C);
    EXPECT_EQ(printCodelet(Clone), printCodelet(C)) << C->getTag();
    EXPECT_EQ(Clone->getCodeletClass(), C->getCodeletClass());
  }
}

TEST(ASTCloner, DeclRefsRemapToClonedDecls) {
  Fixture F;
  ASTCloner Cloner(*F.Ctx);
  CodeletDecl *Orig = F.TU.findByTag("coop_tree");
  CodeletDecl *Clone = Cloner.clone(Orig);

  // Collect the decls owned by each tree; every reference in the clone
  // must point inside the clone, never back into the original.
  struct Collect : ASTVisitor<Collect> {
    bool visitVarDecl(VarDecl *V) {
      Owned.insert(V);
      return true;
    }
    std::set<const Decl *> Owned;
  };
  Collect OrigDecls, CloneDecls;
  OrigDecls.traverseCodelet(Orig);
  CloneDecls.traverseCodelet(Clone);
  for (const ParamDecl *P : Orig->getParams())
    OrigDecls.Owned.insert(P);
  for (const ParamDecl *P : Clone->getParams())
    CloneDecls.Owned.insert(P);

  struct CheckRefs : ASTVisitor<CheckRefs> {
    bool visitDeclRefExpr(DeclRefExpr *R) {
      if (R->getDecl()) {
        EXPECT_FALSE(Forbidden->count(R->getDecl()))
            << "clone references the original tree: " << R->getName();
        bool IsValueDecl = isa<VarDecl, ParamDecl>(R->getDecl());
        bool Ok = Allowed->count(R->getDecl()) || !IsValueDecl;
        EXPECT_TRUE(Ok) << R->getName();
      }
      return true;
    }
    const std::set<const Decl *> *Forbidden = nullptr;
    const std::set<const Decl *> *Allowed = nullptr;
  };
  CheckRefs Check;
  Check.Forbidden = &OrigDecls.Owned;
  Check.Allowed = &CloneDecls.Owned;
  Check.traverseCodelet(Clone);
}

TEST(ASTCloner, MutatingCloneLeavesOriginalIntact) {
  Fixture F;
  ASTCloner Cloner(*F.Ctx);
  CodeletDecl *Orig = F.TU.findByTag("dist_tile");
  std::string Before = printCodelet(Orig);

  CodeletDecl *Clone = Cloner.clone(Orig);
  auto Info = transforms::analyzeGlobalAtomicMap(Clone);
  ASSERT_TRUE(Info.has_value());
  // Apply both destructive variants to the clone.
  EXPECT_TRUE(
      transforms::applyGlobalAtomicVariant(Clone, *Info, /*Enable=*/true));
  EXPECT_EQ(printCodelet(Orig), Before);

  CodeletDecl *Clone2 = ASTCloner(*F.Ctx).clone(Orig);
  auto Info2 = transforms::analyzeGlobalAtomicMap(Clone2);
  ASSERT_TRUE(Info2.has_value());
  EXPECT_TRUE(
      transforms::applyGlobalAtomicVariant(Clone2, *Info2, /*Enable=*/false));
  EXPECT_EQ(printCodelet(Orig), Before);
}

TEST(ASTCloner, ResolvedSemanticInfoSurvives) {
  Fixture F;
  ASTCloner Cloner(*F.Ctx);
  CodeletDecl *Clone = Cloner.clone(F.TU.findByTag("dist_tile"));

  struct FindAtomic : ASTVisitor<FindAtomic> {
    bool visitMemberCallExpr(MemberCallExpr *M) {
      if (M->getMemberKind() == MemberKind::MapAtomic)
        Found = M;
      return true;
    }
    MemberCallExpr *Found = nullptr;
  };
  FindAtomic FA;
  FA.traverseCodelet(Clone);
  ASSERT_NE(FA.Found, nullptr)
      << "resolved MemberKind must survive cloning";
  EXPECT_EQ(FA.Found->getAtomicOp(), ReduceOp::Add);

  // Types survive as well: the fresh clone is analyzable by the shuffle
  // detector without re-running Sema.
  auto Opps = transforms::detectWarpShuffle(
      ASTCloner(*F.Ctx).clone(F.TU.findByTag("coop_tree")));
  EXPECT_EQ(Opps.size(), 2u);
}

} // namespace
