//===- LexerTest.cpp - Lexer unit tests ------------------------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <gtest/gtest.h>

using namespace tangram;
using namespace tangram::lang;

namespace {

std::vector<Token> lexAll(const std::string &Text, unsigned *NumErrors = nullptr) {
  static std::vector<std::unique_ptr<SourceManager>> Keep;
  Keep.push_back(std::make_unique<SourceManager>("test.tgr", Text));
  static std::vector<std::unique_ptr<DiagnosticEngine>> KeepDiags;
  KeepDiags.push_back(std::make_unique<DiagnosticEngine>(*Keep.back()));
  Lexer Lex(*Keep.back(), *KeepDiags.back());
  auto Tokens = Lex.lexAll();
  if (NumErrors)
    *NumErrors = KeepDiags.back()->getNumErrors();
  return Tokens;
}

std::vector<TokenKind> kindsOf(const std::vector<Token> &Tokens) {
  std::vector<TokenKind> Kinds;
  for (const Token &T : Tokens)
    Kinds.push_back(T.getKind());
  return Kinds;
}

TEST(Lexer, EmptyInputYieldsEof) {
  auto Tokens = lexAll("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::Eof));
}

TEST(Lexer, Identifiers) {
  auto Tokens = lexAll("foo _bar baz42");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].getText(), "foo");
  EXPECT_EQ(Tokens[1].getText(), "_bar");
  EXPECT_EQ(Tokens[2].getText(), "baz42");
  for (int I = 0; I < 3; ++I)
    EXPECT_TRUE(Tokens[I].is(TokenKind::Identifier));
}

TEST(Lexer, Keywords) {
  auto Tokens = lexAll("__codelet __coop __tag __shared __tunable Vector");
  EXPECT_EQ(kindsOf(Tokens),
            (std::vector<TokenKind>{
                TokenKind::KwCodelet, TokenKind::KwCoop, TokenKind::KwTag,
                TokenKind::KwShared, TokenKind::KwTunable,
                TokenKind::KwVector, TokenKind::Eof}));
}

TEST(Lexer, AtomicQualifiers) {
  auto Tokens = lexAll("_atomicAdd _atomicSub _atomicMax _atomicMin");
  EXPECT_EQ(kindsOf(Tokens),
            (std::vector<TokenKind>{
                TokenKind::KwAtomicAddQual, TokenKind::KwAtomicSubQual,
                TokenKind::KwAtomicMaxQual, TokenKind::KwAtomicMinQual,
                TokenKind::Eof}));
}

TEST(Lexer, NumbersIntAndFloat) {
  auto Tokens = lexAll("0 42 3.5 2.0f");
  ASSERT_EQ(Tokens.size(), 5u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::IntLiteral));
  EXPECT_TRUE(Tokens[1].is(TokenKind::IntLiteral));
  EXPECT_TRUE(Tokens[2].is(TokenKind::FloatLiteral));
  EXPECT_TRUE(Tokens[3].is(TokenKind::FloatLiteral));
  EXPECT_EQ(Tokens[3].getText(), "2.0f");
}

TEST(Lexer, CompoundOperators) {
  auto Tokens = lexAll("+= -= *= /= == != <= >= && || ++ --");
  EXPECT_EQ(kindsOf(Tokens),
            (std::vector<TokenKind>{
                TokenKind::PlusEqual, TokenKind::MinusEqual,
                TokenKind::StarEqual, TokenKind::SlashEqual,
                TokenKind::EqualEqual, TokenKind::ExclaimEqual,
                TokenKind::LessEqual, TokenKind::GreaterEqual,
                TokenKind::AmpAmp, TokenKind::PipePipe, TokenKind::PlusPlus,
                TokenKind::MinusMinus, TokenKind::Eof}));
}

TEST(Lexer, LineAndBlockComments) {
  auto Tokens = lexAll("a // comment to end\nb /* inline */ c");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].getText(), "a");
  EXPECT_EQ(Tokens[1].getText(), "b");
  EXPECT_EQ(Tokens[2].getText(), "c");
}

TEST(Lexer, UnterminatedBlockCommentDiagnosed) {
  unsigned Errors = 0;
  auto Tokens = lexAll("a /* never closed", &Errors);
  EXPECT_EQ(Errors, 1u);
  EXPECT_TRUE(Tokens.back().is(TokenKind::Eof));
}

TEST(Lexer, UnknownCharacterRecovery) {
  unsigned Errors = 0;
  auto Tokens = lexAll("a @ b", &Errors);
  EXPECT_EQ(Errors, 1u);
  ASSERT_EQ(Tokens.size(), 3u); // a, b, eof — '@' skipped.
  EXPECT_EQ(Tokens[1].getText(), "b");
}

TEST(Lexer, TokenLocationsAreByteOffsets) {
  auto Tokens = lexAll("ab cd");
  EXPECT_EQ(Tokens[0].getLoc().getOffset(), 0u);
  EXPECT_EQ(Tokens[1].getLoc().getOffset(), 3u);
  EXPECT_EQ(Tokens[1].getEndLoc().getOffset(), 5u);
}

TEST(Lexer, ArrayTypeTokens) {
  auto Tokens = lexAll("const Array<1,int>");
  EXPECT_EQ(kindsOf(Tokens),
            (std::vector<TokenKind>{
                TokenKind::KwConst, TokenKind::KwArray, TokenKind::Less,
                TokenKind::IntLiteral, TokenKind::Comma, TokenKind::KwInt,
                TokenKind::Greater, TokenKind::Eof}));
}

TEST(Lexer, PeriodAndMemberCall) {
  auto Tokens = lexAll("in.Size()");
  EXPECT_EQ(kindsOf(Tokens),
            (std::vector<TokenKind>{
                TokenKind::Identifier, TokenKind::Period,
                TokenKind::Identifier, TokenKind::LParen, TokenKind::RParen,
                TokenKind::Eof}));
}

} // namespace
