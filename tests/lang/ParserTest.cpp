//===- ParserTest.cpp - Parser unit tests -----------------------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/ASTPrinter.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "synth/ReductionSpectrum.h"

#include <gtest/gtest.h>

using namespace tangram;
using namespace tangram::lang;

namespace {

struct ParseResult {
  std::unique_ptr<SourceManager> SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::unique_ptr<ASTContext> Ctx;
  TranslationUnit TU;
};

ParseResult parse(const std::string &Text) {
  ParseResult R;
  R.SM = std::make_unique<SourceManager>("test.tgr", Text);
  R.Diags = std::make_unique<DiagnosticEngine>(*R.SM);
  R.Ctx = std::make_unique<ASTContext>();
  Parser P(*R.SM, *R.Ctx, *R.Diags);
  R.TU = P.parseTranslationUnit();
  return R;
}

TEST(Parser, MinimalCodelet) {
  auto R = parse("__codelet int f(const Array<1,int> in) { return 0; }");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->renderAll();
  ASSERT_EQ(R.TU.Codelets.size(), 1u);
  const CodeletDecl *C = R.TU.Codelets[0];
  EXPECT_EQ(C->getName(), "f");
  EXPECT_FALSE(C->isCoopQualified());
  EXPECT_TRUE(C->getTag().empty());
  ASSERT_EQ(C->getParams().size(), 1u);
  EXPECT_TRUE(C->getParams()[0]->getType()->isArray());
  EXPECT_TRUE(C->getParams()[0]->getType()->isConstQualified());
}

TEST(Parser, CoopAndTagQualifiers) {
  auto R = parse("__codelet __coop __tag(shared_V2) int f() { return 1; }");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->renderAll();
  const CodeletDecl *C = R.TU.Codelets[0];
  EXPECT_TRUE(C->isCoopQualified());
  EXPECT_EQ(C->getTag(), "shared_V2");
}

TEST(Parser, SharedAtomicQualifiedDecl) {
  auto R = parse("__codelet int f() {\n"
                 "  __shared _atomicAdd int partial;\n"
                 "  __shared _atomicMax float m;\n"
                 "  return 0;\n"
                 "}");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->renderAll();
  const auto *Body = R.TU.Codelets[0]->getBody();
  const auto *D0 = cast<DeclStmt>(Body->getBody()[0])->getVar();
  EXPECT_TRUE(D0->isShared());
  EXPECT_TRUE(D0->hasAtomicQualifier());
  EXPECT_EQ(D0->getAtomicOp(), ReduceOp::Add);
  const auto *D1 = cast<DeclStmt>(Body->getBody()[1])->getVar();
  EXPECT_EQ(D1->getAtomicOp(), ReduceOp::Max);
  EXPECT_TRUE(D1->getType()->isFloat());
}

TEST(Parser, SharedArrayWithSizeExpression) {
  auto R = parse("__codelet int f(const Array<1,int> in) {\n"
                 "  __shared int tmp[in.Size()];\n"
                 "  return 0;\n"
                 "}");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->renderAll();
  const auto *Var =
      cast<DeclStmt>(R.TU.Codelets[0]->getBody()->getBody()[0])->getVar();
  EXPECT_TRUE(Var->isArrayForm());
  EXPECT_TRUE(isa<MemberCallExpr>(Var->getArraySize()));
}

TEST(Parser, VectorAndMapCtorForms) {
  auto R = parse(
      "__codelet int f(const Array<1,int> in) {\n"
      "  __tunable unsigned p;\n"
      "  Vector vthread();\n"
      "  Sequence start(tiled);\n"
      "  Map map(f, partition(in, p, start, start, start));\n"
      "  return 0;\n"
      "}");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->renderAll();
  const auto &Body = R.TU.Codelets[0]->getBody()->getBody();
  const auto *Vec = cast<DeclStmt>(Body[1])->getVar();
  EXPECT_TRUE(Vec->getType()->isVector());
  EXPECT_TRUE(Vec->hasCtorForm());
  const auto *Map = cast<DeclStmt>(Body[3])->getVar();
  EXPECT_TRUE(Map->getType()->isMap());
  ASSERT_EQ(Map->getCtorArgs().size(), 2u);
  EXPECT_TRUE(isa<CallExpr>(Map->getCtorArgs()[1]));
}

TEST(Parser, OperatorPrecedence) {
  auto R = parse("__codelet int f() { return 1 + 2 * 3 - 4 / 2; }");
  ASSERT_FALSE(R.Diags->hasErrors());
  const auto *Ret =
      cast<ReturnStmt>(R.TU.Codelets[0]->getBody()->getBody()[0]);
  EXPECT_EQ(printExpr(Ret->getValue()), "1 + 2 * 3 - 4 / 2");
  // Shape: ((1 + (2*3)) - (4/2)).
  const auto *Top = cast<BinaryExpr>(Ret->getValue());
  EXPECT_EQ(Top->getOp(), BinaryOpKind::Sub);
  const auto *Lhs = cast<BinaryExpr>(Top->getLHS());
  EXPECT_EQ(Lhs->getOp(), BinaryOpKind::Add);
}

TEST(Parser, ConditionalExpression) {
  auto R = parse("__codelet int f() { return 1 < 2 ? 3 : 4; }");
  ASSERT_FALSE(R.Diags->hasErrors());
  const auto *Ret =
      cast<ReturnStmt>(R.TU.Codelets[0]->getBody()->getBody()[0]);
  ASSERT_TRUE(isa<ConditionalExpr>(Ret->getValue()));
}

TEST(Parser, ForLoopWithCompoundAssignStep) {
  auto R = parse("__codelet int f() {\n"
                 "  int s = 0;\n"
                 "  for (int i = 16; i > 0; i /= 2) { s += i; }\n"
                 "  return s;\n"
                 "}");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->renderAll();
  const auto *For =
      cast<ForStmt>(R.TU.Codelets[0]->getBody()->getBody()[1]);
  ASSERT_TRUE(For->getInit() && For->getCond() && For->getInc());
  EXPECT_TRUE(isa<DeclStmt>(For->getInit()));
  const auto *Inc = cast<BinaryExpr>(For->getInc());
  EXPECT_EQ(Inc->getOp(), BinaryOpKind::DivAssign);
}

TEST(Parser, IfElse) {
  auto R = parse("__codelet int f() {\n"
                 "  int x = 0;\n"
                 "  if (x == 0) { x = 1; } else { x = 2; }\n"
                 "  return x;\n"
                 "}");
  ASSERT_FALSE(R.Diags->hasErrors());
  const auto *If = cast<IfStmt>(R.TU.Codelets[0]->getBody()->getBody()[1]);
  EXPECT_NE(If->getElse(), nullptr);
}

TEST(Parser, MemberCallChainsAndIndexing) {
  auto R = parse("__codelet int f(const Array<1,int> in) {\n"
                 "  Vector vthread();\n"
                 "  int v = in[vthread.ThreadId() + 1];\n"
                 "  return v;\n"
                 "}");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->renderAll();
  const auto *Var =
      cast<DeclStmt>(R.TU.Codelets[0]->getBody()->getBody()[1])->getVar();
  const auto *Idx = cast<IndexExpr>(Var->getInit());
  EXPECT_TRUE(isa<BinaryExpr>(Idx->getIndex()));
}

TEST(Parser, MapAtomicApiCall) {
  auto R = parse("__codelet int f(const Array<1,int> in) {\n"
                 "  __tunable unsigned p;\n"
                 "  Sequence s(tiled);\n"
                 "  Map map(f, partition(in, p, s, s, s));\n"
                 "  map.atomicAdd();\n"
                 "  return f(map);\n"
                 "}");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->renderAll();
  const auto &Body = R.TU.Codelets[0]->getBody()->getBody();
  const auto *Call = cast<MemberCallExpr>(cast<Expr>(Body[3])->ignoreParens());
  EXPECT_EQ(Call->getMember(), "atomicAdd");
}

TEST(Parser, ErrorRecoveryProducesRemainingCodelets) {
  auto R = parse("__codelet int broken( { return 0; }\n"
                 "__codelet int ok() { return 1; }");
  EXPECT_TRUE(R.Diags->hasErrors());
  // The second codelet still parses.
  bool FoundOk = false;
  for (const CodeletDecl *C : R.TU.Codelets)
    FoundOk |= C->getName() == "ok";
  EXPECT_TRUE(FoundOk);
}

TEST(Parser, MissingSemicolonDiagnosed) {
  auto R = parse("__codelet int f() { int x = 1 return x; }");
  EXPECT_TRUE(R.Diags->hasErrors());
}

TEST(Parser, CanonicalReductionSourceParses) {
  for (auto Elem : {ir::ScalarType::I32, ir::ScalarType::F32,
                    ir::ScalarType::I64, ir::ScalarType::F64}) {
    auto R = parse(synth::getReductionSource(Elem));
    ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->renderAll();
    EXPECT_EQ(R.TU.Codelets.size(), 6u);
    EXPECT_NE(R.TU.findByTag("serial"), nullptr);
    EXPECT_NE(R.TU.findByTag("dist_tile"), nullptr);
    EXPECT_NE(R.TU.findByTag("dist_stride"), nullptr);
    EXPECT_NE(R.TU.findByTag("coop_tree"), nullptr);
    EXPECT_NE(R.TU.findByTag("shared_V1"), nullptr);
    EXPECT_NE(R.TU.findByTag("shared_V2"), nullptr);
    EXPECT_EQ(R.TU.getSpectrum("sum").size(), 6u);
  }
}

TEST(Parser, PrinterRoundTrip) {
  // Print then reparse; the second parse must produce the same print.
  auto R1 = parse(synth::getReductionSource());
  ASSERT_FALSE(R1.Diags->hasErrors());
  std::string P1 = printTranslationUnit(R1.TU);
  auto R2 = parse(P1);
  ASSERT_FALSE(R2.Diags->hasErrors()) << R2.Diags->renderAll();
  EXPECT_EQ(printTranslationUnit(R2.TU), P1);
}

} // namespace
