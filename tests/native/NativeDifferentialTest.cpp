//===- NativeDifferentialTest.cpp - Native backend vs simulator oracle --------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// Differential acceptance for the native CPU backend (src/native): the
// simulator is the oracle, the native engine must agree with it on the
// same synthesized bytecode. Coverage:
//
//   * the full 68-variant search space, on every architecture model, at an
//     awkward N (partial warps, partial tail block);
//   * the reduce::OpDef spectrum ({Add, Min, Max, ArgMax} x {F32, I32,
//     I64}) on representative variants, bit-exact for integer and
//     arg-reductions (value AND index payload), ULP-bounded for float sum;
//   * bit-identical native results across engine thread counts (the
//     parallel effect-log path vs the sequential path);
//   * the engine contracts around the backend seam: backend-distinct
//     cache keys, validateVariant's three-way cross-check, the RaceCheck
//     refusal, and the DynamicSelector's native fallback tier.
//
// Registered under the `native` ctest label (tier1-native preset).
//
//===----------------------------------------------------------------------===//

#include "native/NativeKernel.h"
#include "reduce/OpDef.h"
#include "tangram/DynamicSelector.h"
#include "tangram/Tangram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace tangram;
using namespace tangram::sim;
using namespace tangram::synth;

using support::StatusCode;

namespace {

TangramReduction &facade() {
  static std::unique_ptr<TangramReduction> TR = [] {
    auto T = TangramReduction::create();
    EXPECT_TRUE(T.ok()) << T.status().toString();
    return std::move(*T);
  }();
  return *TR;
}

/// Float-sum oracle tolerance — the same bound ExecutionEngine's
/// cross-check applies: both engines evaluate f32 ops double-then-round
/// in the same order, so divergence beyond rounding noise is a bug.
double floatTol(double Oracle) { return std::abs(Oracle) * 1e-6 + 1e-9; }

//===----------------------------------------------------------------------===//
// Full-space sweep: every variant, every arch, simulator vs native.
//===----------------------------------------------------------------------===//

TEST(NativeDifferential, EveryVariantMatchesTheOracleOnEveryArch) {
  TangramReduction &TR = facade();
  // Partial warps and a partial tail block: 1777 = 55 * 32 + 17.
  const size_t N = 1777;

  unsigned ArchCount = 0;
  const ArchDesc *Archs = getAllArchs(ArchCount);
  ASSERT_GT(ArchCount, 0u);
  unsigned Compared = 0;
  for (unsigned A = 0; A != ArchCount; ++A) {
    engine::ExecutionEngine &E = TR.engineFor(Archs[A]);
    size_t Mark = E.deviceMark();
    VirtualPattern Pattern;
    BufferId In = E.getDevice().allocVirtual(ir::ScalarType::F32, N, Pattern);
    for (const VariantDescriptor &V : TR.getSearchSpace().All) {
      std::string Cell = Archs[A].Name + " / " + V.getName();
      engine::ReduceRequest Req{.Desc = V, .In = In, .N = N};
      auto Sim = E.run(Req);
      Req.BackendKind = engine::Backend::NativeCpu;
      auto Nat = E.run(Req);
      if (!Sim.ok()) {
        // Synthesis failures are backend-independent (e.g. an atomic the
        // arch model refuses): the native path must refuse identically,
        // not fabricate a result.
        EXPECT_FALSE(Nat.ok()) << Cell;
        continue;
      }
      ASSERT_TRUE(Nat.ok()) << Cell << ": " << Nat.status().toString();
      EXPECT_NEAR(Nat->FloatValue, Sim->FloatValue, floatTol(Sim->FloatValue))
          << Cell;
      ++Compared;
    }
    E.deviceRelease(Mark);
  }
  // The default facade's space is fully legal on every modeled arch: the
  // sweep must actually have compared arch-count x 68 pairs, not skipped.
  EXPECT_EQ(Compared, ArchCount * TR.getSearchSpace().All.size());
}

//===----------------------------------------------------------------------===//
// The op x dtype spectrum on representative variants.
//===----------------------------------------------------------------------===//

struct MatrixPoint {
  ReduceOp Op;
  ir::ScalarType Elem;
};

std::string pointName(const MatrixPoint &P) {
  return std::string(getReduceOpSpelling(P.Op)) + "_" +
         reduce::getScalarTypeSpelling(P.Elem);
}

const MatrixPoint Matrix[] = {
    {ReduceOp::Add, ir::ScalarType::F32},
    {ReduceOp::Add, ir::ScalarType::I32},
    {ReduceOp::Add, ir::ScalarType::I64},
    {ReduceOp::Min, ir::ScalarType::F32},
    {ReduceOp::Min, ir::ScalarType::I32},
    {ReduceOp::Min, ir::ScalarType::I64},
    {ReduceOp::Max, ir::ScalarType::F32},
    {ReduceOp::Max, ir::ScalarType::I32},
    {ReduceOp::Max, ir::ScalarType::I64},
    {ReduceOp::ArgMax, ir::ScalarType::F32},
    {ReduceOp::ArgMax, ir::ScalarType::I32},
    {ReduceOp::ArgMax, ir::ScalarType::I64},
};

TangramReduction &facadeFor(const MatrixPoint &P) {
  static std::map<std::pair<ReduceOp, ir::ScalarType>,
                  std::unique_ptr<TangramReduction>>
      Cache;
  auto Key = std::make_pair(P.Op, P.Elem);
  auto It = Cache.find(Key);
  if (It == Cache.end()) {
    TangramReduction::Options Opts;
    Opts.Op = P.Op;
    Opts.Elem = P.Elem;
    auto TR = TangramReduction::create(Opts);
    EXPECT_TRUE(TR.ok()) << pointName(P) << ": " << TR.status().toString();
    It = Cache.emplace(Key, std::move(*TR)).first;
  }
  return *It->second;
}

class NativeOpMatrix : public ::testing::TestWithParam<MatrixPoint> {};

TEST_P(NativeOpMatrix, NativeAgreesWithTheOracle) {
  const MatrixPoint &P = GetParam();
  TangramReduction &TR = facadeFor(P);
  const ArchDesc &Arch = getPascalP100();
  engine::ExecutionEngine &E = TR.engineFor(Arch);

  // 1023 = 31 * 33: odd shape, and 37 is coprime with it, so the
  // permutation below yields pairwise-distinct values — the arg-reduction
  // winner index is unambiguous and must match bit-for-bit.
  const size_t N = 1023;
  size_t Mark = E.deviceMark();
  BufferId In = E.getDevice().alloc(P.Elem, N);
  if (P.Elem == ir::ScalarType::F32) {
    std::vector<float> Data(N);
    for (size_t I = 0; I != N; ++I)
      Data[I] = static_cast<float>(static_cast<long long>(I * 37 % N) -
                                   static_cast<long long>(N / 2));
    E.getDevice().writeFloats(In, Data);
  } else {
    std::vector<int> Data(N);
    for (size_t I = 0; I != N; ++I)
      Data[I] = static_cast<int>(I * 37 % N) - static_cast<int>(N / 2);
    E.getDevice().writeInts(In, Data);
  }

  bool Illegal = reduce::atomicLegality(P.Op, P.Elem, Arch.Gen) ==
                 reduce::AtomicSupport::Illegal;
  // "b" is pure shuffle-tree (no atomics); "p" layers shared CAS atomics
  // and the global combine on top — together they cross every lowering
  // layer the op axis parameterizes.
  for (const char *Label : {"b", "p"}) {
    const VariantDescriptor *V = findByFigure6Label(TR.getSearchSpace(), Label);
    ASSERT_NE(V, nullptr);
    std::string Cell = pointName(P) + " / " + Label;
    engine::ReduceRequest Req{.Desc = *V, .In = In, .N = N};
    auto Sim = E.run(Req);
    Req.BackendKind = engine::Backend::NativeCpu;
    auto Nat = E.run(Req);
    if (!Sim.ok()) {
      EXPECT_TRUE(Illegal) << Cell << ": " << Sim.status().toString();
      EXPECT_FALSE(Nat.ok()) << Cell;
      continue;
    }
    ASSERT_TRUE(Nat.ok()) << Cell << ": " << Nat.status().toString();
    if (P.Elem == ir::ScalarType::F32 && P.Op == ReduceOp::Add) {
      // Summation rounds; everything else below is exact selection.
      EXPECT_NEAR(Nat->FloatValue, Sim->FloatValue,
                  floatTol(Sim->FloatValue))
          << Cell;
    } else {
      EXPECT_EQ(Nat->FloatValue, Sim->FloatValue) << Cell;
      EXPECT_EQ(Nat->IntValue, Sim->IntValue) << Cell;
    }
    if (isArgReduce(P.Op)) {
      EXPECT_EQ(Nat->IndexValue, Sim->IndexValue) << Cell;
    }
  }
  E.deviceRelease(Mark);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NativeOpMatrix, ::testing::ValuesIn(Matrix),
    [](const ::testing::TestParamInfo<MatrixPoint> &Info) {
      return pointName(Info.param);
    });

//===----------------------------------------------------------------------===//
// Determinism across thread counts (mirrors the engine's simulator test).
//===----------------------------------------------------------------------===//

TEST(NativeDifferential, ResultsAreBitIdenticalAcrossThreadCounts) {
  // Enough blocks that the 4-thread engine actually takes the parallel
  // effect-log path; float data with rounding-sensitive magnitudes so any
  // reassociation across the replay boundary would show.
  const size_t N = size_t{1} << 16;
  std::vector<float> Data(N);
  for (size_t I = 0; I != N; ++I)
    Data[I] = 1.0f + static_cast<float>(I % 193) * 0.03125f;

  double Got[2] = {0, 0};
  unsigned Threads[2] = {1, 4};
  for (int T = 0; T != 2; ++T) {
    TangramReduction::Options Opts;
    Opts.Engine.ThreadCount = Threads[T];
    auto TR = TangramReduction::create(Opts);
    ASSERT_TRUE(TR.ok()) << TR.status().toString();
    engine::ExecutionEngine &E = (*TR)->engineFor(getPascalP100());
    VariantDescriptor V = *findByFigure6Label((*TR)->getSearchSpace(), "b");
    V.BlockSize = 128;
    V.Coarsen = 4;
    BufferId In = E.getDevice().alloc(ir::ScalarType::F32, N);
    E.getDevice().writeFloats(In, Data);
    auto Out = E.run(engine::ReduceRequest{
        .Desc = V,
        .In = In,
        .N = N,
        .BackendKind = engine::Backend::NativeCpu});
    ASSERT_TRUE(Out.ok()) << Out.status().toString();
    Got[T] = Out->FloatValue;
  }
  // Bitwise, not approximate: the schedule is fixed, only the host-side
  // execution strategy differs.
  EXPECT_EQ(Got[0], Got[1]);
}

//===----------------------------------------------------------------------===//
// Engine contracts around the backend seam.
//===----------------------------------------------------------------------===//

TEST(NativeDifferential, BackendsKeyTheVariantCacheApart) {
  TangramReduction &TR = facade();
  engine::ExecutionEngine &E = TR.engineFor(getMaxwellGTX980());
  const VariantDescriptor &D = *findByFigure6Label(TR.getSearchSpace(), "n");

  auto SimV = E.getVariant(D, {}, engine::Backend::Simulator);
  ASSERT_TRUE(SimV.ok()) << SimV.status().toString();
  EXPECT_EQ((*SimV)->Native, nullptr);

  auto NatV = E.getVariant(D, {}, engine::Backend::NativeCpu);
  ASSERT_TRUE(NatV.ok()) << NatV.status().toString();
  ASSERT_NE((*NatV)->Native, nullptr);
  EXPECT_TRUE((*NatV)->Native->PairMode == false);
  // Distinct cache entries: resolving natively must not retrofit the
  // simulator's entry (callers holding it assume Native stays null).
  EXPECT_NE(SimV->get(), NatV->get());

  // And the native entry is cached: the second resolve is the same object.
  auto Again = E.getVariant(D, {}, engine::Backend::NativeCpu);
  ASSERT_TRUE(Again.ok());
  EXPECT_EQ(NatV->get(), Again->get());
}

TEST(NativeDifferential, ValidateVariantCrossChecksNatively) {
  TangramReduction &TR = facade();
  engine::ExecutionEngine &E = TR.engineFor(getKeplerK40c());
  const VariantDescriptor &D = *findByFigure6Label(TR.getSearchSpace(), "b");
  engine::DiagnoseRequest DR;
  DR.Desc = D;
  DR.N = 2048;
  DR.BackendKind = engine::Backend::NativeCpu;
  auto Report = E.diagnose(DR);
  ASSERT_TRUE(Report.ok()) << Report.status().toString();
  support::Status S = Report->Validation;
  EXPECT_TRUE(S.ok()) << S.toString();
  EXPECT_FALSE(E.isQuarantined(D));
}

TEST(NativeDifferential, RaceCheckIsRefusedNatively) {
  TangramReduction &TR = facade();
  engine::ExecutionEngine &E = TR.engineFor(getPascalP100());
  const VariantDescriptor &D = *findByFigure6Label(TR.getSearchSpace(), "b");
  size_t Mark = E.deviceMark();
  VirtualPattern Pattern;
  BufferId In = E.getDevice().allocVirtual(ir::ScalarType::F32, 4096, Pattern);
  auto Out = E.run(engine::ReduceRequest{
      .Desc = D,
      .In = In,
      .N = 4096,
      .Mode = ExecMode::RaceCheck,
      .BackendKind = engine::Backend::NativeCpu});
  ASSERT_FALSE(Out.ok());
  EXPECT_EQ(Out.status().Code, StatusCode::InvalidArgument);
  E.deviceRelease(Mark);
}

TEST(NativeDifferential, SelectorFallsBackToNativeWhenSimulatorPathIsDead) {
  // Fresh facade: quarantine state is per-engine and must not leak into
  // the shared-facade tests above.
  auto TR = TangramReduction::create();
  ASSERT_TRUE(TR.ok()) << TR.status().toString();
  engine::ExecutionEngine &E = (*TR)->engineFor(getMaxwellGTX980());

  std::vector<VariantDescriptor> Portfolio = {
      *findByFigure6Label((*TR)->getSearchSpace(), "b"),
      *findByFigure6Label((*TR)->getSearchSpace(), "n"),
  };
  for (const VariantDescriptor &D : Portfolio)
    E.quarantineVariant(
        D, support::Status(StatusCode::DeadlineExceeded,
                           "synthetic quarantine for fallback test"));

  const size_t N = 4096;
  std::vector<float> Data(N);
  double Want = 0;
  for (size_t I = 0; I != N; ++I) {
    Data[I] = static_cast<float>(I % 97) * 0.25f;
    Want += Data[I];
  }
  BufferId In = E.getDevice().alloc(ir::ScalarType::F32, N);
  E.getDevice().writeFloats(In, Data);

  DynamicSelector Sel(**TR, Portfolio);
  auto Out = Sel.reduce(E, engine::ReduceRequest{.In = In, .N = N});
  ASSERT_TRUE(Out.ok()) << Out.status().toString();
  // The native tier answered — not the host-loop last resort: quarantine
  // is a simulator-path verdict and does not damn the native backend.
  EXPECT_EQ(Sel.getNativeFallbackRuns(), 1u);
  EXPECT_EQ(Sel.getFallbackRuns(), 0u);
  EXPECT_NEAR(Out->FloatValue, Want, floatTol(Want));
}

//===----------------------------------------------------------------------===//
// Lowering regression: scratch-register plane reuse.
//===----------------------------------------------------------------------===//

TEST(NativeLowering, ScratchRegisterPlaneReuseLowers) {
  // Variant "m"'s bytecode reuses scratch registers across int and float
  // planes on either side of an if/else join — the shape that requires
  // the structured per-lane dataflow (a naive CFG-edge walk follows the
  // interpreter's empty-mask skip edges and reports a false conflict).
  TangramReduction &TR = facade();
  const VariantDescriptor *D = findByFigure6Label(TR.getSearchSpace(), "m");
  ASSERT_NE(D, nullptr);
  auto V = TR.synthesize(*D);
  ASSERT_TRUE(V.ok()) << V.status().toString();
  auto NK = native::lowerToNative((*V)->Compiled);
  ASSERT_TRUE(NK.ok()) << NK.status().toString();
  EXPECT_TRUE(NK->UsesF32);
  EXPECT_FALSE(NK->PairMode);
}

} // namespace
