//===- PassManagerTest.cpp - PassManager / instrumentation tests ----------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "pm/PassManager.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

using namespace tangram;
using namespace tangram::pm;

namespace {

struct Counter {
  std::vector<std::string> Trace;
};

std::unique_ptr<Pass<Counter>> tracePass(const std::string &Name) {
  return makePass<Counter>(Name,
                           std::function<support::Status(Counter &)>(
                               [Name](Counter &C) {
                                 C.Trace.push_back(Name);
                                 return support::Status::success();
                               }));
}

TEST(PassManager, RunsPassesInRegistrationOrder) {
  PassManager<Counter> PM;
  PM.addPass(tracePass("first"));
  PM.addPass(tracePass("second"));
  PM.addPass(tracePass("third"));
  EXPECT_EQ(PM.size(), 3u);
  EXPECT_EQ(PM.getPassNames(),
            (std::vector<std::string>{"first", "second", "third"}));
  Counter C;
  ASSERT_TRUE(PM.run(C).ok());
  EXPECT_EQ(C.Trace, (std::vector<std::string>{"first", "second", "third"}));
}

TEST(PassManager, FailingPassAbortsPipelineWithItsStatus) {
  PassManager<Counter> PM;
  PM.addPass(tracePass("ok"));
  PM.addPass("boom", [](Counter &) {
    return support::Status(support::StatusCode::SynthesisError,
                           "deliberate failure");
  });
  PM.addPass(tracePass("never"));
  Counter C;
  support::Status S = PM.run(C);
  EXPECT_EQ(S.Code, support::StatusCode::SynthesisError);
  EXPECT_EQ(S.Message, "deliberate failure");
  // The pass after the failure must not have run.
  EXPECT_EQ(C.Trace, (std::vector<std::string>{"ok"}));
  // Both executed passes are still timed (the failure itself is billed).
  ASSERT_EQ(PM.getStageTimes().size(), 2u);
  EXPECT_EQ(PM.getStageTimes()[0].Name, "ok");
  EXPECT_EQ(PM.getStageTimes()[1].Name, "boom");
}

TEST(PassManager, TimingsAggregateAcrossRunsIntoInstrumentation) {
  PassInstrumentation PI;
  PassManager<Counter> PM;
  PM.setInstrumentation(&PI);
  PM.addPass(tracePass("a"));
  PM.addPass(tracePass("b"));
  Counter C;
  ASSERT_TRUE(PM.run(C).ok());
  ASSERT_TRUE(PM.run(C).ok());
  ASSERT_TRUE(PM.run(C).ok());
  std::vector<PassTiming> T = PI.getTimings();
  ASSERT_EQ(T.size(), 2u);
  EXPECT_EQ(T[0].Name, "a");
  EXPECT_EQ(T[0].Invocations, 3u);
  EXPECT_EQ(T[1].Name, "b");
  EXPECT_EQ(T[1].Invocations, 3u);
  EXPECT_GE(PI.getTotalSeconds(), 0.0);
  // getStageTimes() reflects only the most recent run.
  EXPECT_EQ(PM.getStageTimes().size(), 2u);
  std::string Table = PI.renderTimingTable();
  EXPECT_NE(Table.find("a"), std::string::npos);
  EXPECT_NE(Table.find("b"), std::string::npos);
  PI.reset();
  EXPECT_TRUE(PI.getTimings().empty());
}

TEST(PassManager, PrintAfterAllCapturesOneDumpPerPass) {
  InstrumentationOptions Opts;
  Opts.PrintAfterAll = true;
  PassInstrumentation PI(Opts);
  PassManager<Counter> PM;
  PM.setInstrumentation(&PI);
  PM.setPrinter([](const Counter &C) {
    return "trace-size=" + std::to_string(C.Trace.size());
  });
  PM.addPass(tracePass("alpha"));
  PM.addPass(tracePass("beta"));
  Counter C;
  ASSERT_TRUE(PM.run(C).ok());
  std::string Dump = PI.getDumpText();
  EXPECT_NE(Dump.find("*** IR Dump After alpha ***\ntrace-size=1\n"),
            std::string::npos);
  EXPECT_NE(Dump.find("*** IR Dump After beta ***\ntrace-size=2\n"),
            std::string::npos);
  // takeDumpText drains the buffer.
  EXPECT_EQ(PI.takeDumpText(), Dump);
  EXPECT_TRUE(PI.getDumpText().empty());
}

TEST(PassManager, DumpingIsOffByDefault) {
  PassInstrumentation PI;
  PassManager<Counter> PM;
  PM.setInstrumentation(&PI);
  PM.setPrinter([](const Counter &) { return std::string("text"); });
  PM.addPass(tracePass("p"));
  Counter C;
  ASSERT_TRUE(PM.run(C).ok());
  EXPECT_TRUE(PI.getDumpText().empty());
}

TEST(PassManager, VerifyEachTagsFailureWithPassName) {
  InstrumentationOptions Opts;
  Opts.VerifyEach = true;
  PassInstrumentation PI(Opts);
  PassManager<Counter> PM;
  PM.setInstrumentation(&PI);
  PM.setVerifier([](const Counter &C) {
    std::vector<std::string> Errors;
    if (C.Trace.size() >= 2)
      Errors.push_back("trace grew past one entry");
    return Errors;
  });
  PM.addPass(tracePass("fine"));
  PM.addPass(tracePass("corrupting"));
  PM.addPass(tracePass("unreached"));
  Counter C;
  support::Status S = PM.run(C);
  EXPECT_EQ(S.Code, support::StatusCode::SynthesisError);
  EXPECT_EQ(S.Message,
            "verifier after pass 'corrupting': trace grew past one entry");
  EXPECT_EQ(C.Trace,
            (std::vector<std::string>{"fine", "corrupting"}));
}

TEST(PassManager, ForceVerifyEachOverridesOptions) {
  // No instrumentation at all: setForceVerifyEach alone must still turn
  // per-pass verification on (the TGR_VERIFY_EACH CI hook).
  PassManager<Counter> PM;
  PM.setForceVerifyEach(true);
  PM.setVerifier([](const Counter &) {
    return std::vector<std::string>{"always invalid"};
  });
  PM.addPass(tracePass("only"));
  Counter C;
  support::Status S = PM.run(C);
  EXPECT_EQ(S.Code, support::StatusCode::SynthesisError);
  EXPECT_EQ(S.Message, "verifier after pass 'only': always invalid");
}

TEST(Statistics, CountersAccumulateAndReport) {
  support::Statistics &S = support::Statistics::get();
  S.reset();
  EXPECT_EQ(S.lookup("pmtest.counter"), 0u);
  S.add("pmtest.counter");
  S.add("pmtest.counter", 4);
  S.add("pmtest.other", 2);
  EXPECT_EQ(S.lookup("pmtest.counter"), 5u);
  auto Snap = S.snapshot();
  ASSERT_EQ(Snap.size(), 2u);
  // snapshot() is sorted by name.
  EXPECT_EQ(Snap[0].first, "pmtest.counter");
  EXPECT_EQ(Snap[1].first, "pmtest.other");
  std::string Report = S.report();
  EXPECT_NE(Report.find("pmtest.counter"), std::string::npos);
  S.reset();
  EXPECT_TRUE(S.snapshot().empty());
  EXPECT_TRUE(S.report().empty());
}

} // namespace
