//===- PrintAfterAllGoldenTest.cpp - dump byte-stability vs thread count --===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// The --print-after-all dump for examples/reduction.tgr must be
// byte-identical between a 1-thread and a 4-thread engine: variant
// lowering runs on the calling thread and only block simulation fans out
// to the pool, so pass ordering — and therefore the dump — may not depend
// on host parallelism. A golden-prefix check additionally pins the dump
// header format tools grep for.
//
//===----------------------------------------------------------------------===//

#include "gpusim/Arch.h"
#include "tangram/Tangram.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace tangram;

namespace {

std::string readReductionTgr() {
  std::ifstream In(TGR_REDUCTION_TGR_PATH);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Creates a facade over examples/reduction.tgr with --print-after-all on
/// and \p Threads simulation workers, sweeps the first few pruned variants
/// through the Pascal engine (compiling them), and returns the dump text.
std::string dumpWithThreads(unsigned Threads) {
  TangramReduction::Options Opts;
  Opts.SourceOverride = readReductionTgr();
  Opts.PM.PrintAfterAll = true;
  Opts.Engine.ThreadCount = Threads;
  auto TR = TangramReduction::create(Opts);
  EXPECT_TRUE(static_cast<bool>(TR)) << TR.status().toString();
  if (!TR)
    return "";
  const synth::SearchSpace &Space = (*TR)->getSearchSpace();
  engine::ExecutionEngine &E = (*TR)->engineFor(sim::getPascalP100());
  const size_t N = 4096;
  for (size_t I = 0; I != Space.Pruned.size() && I != 4; ++I) {
    size_t Mark = E.deviceMark();
    sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, N);
    std::vector<float> Host(N, 1.0f);
    E.getDevice().writeFloats(In, Host);
    auto Out = E.run(
        engine::ReduceRequest{.Desc = Space.Pruned[I], .In = In, .N = N});
    EXPECT_TRUE(static_cast<bool>(Out))
        << Space.Pruned[I].getName() << ": " << Out.status().toString();
    E.deviceRelease(Mark);
  }
  return (*TR)->getInstrumentation().getDumpText();
}

TEST(PrintAfterAllGolden, SourceFileIsPresentAndCanonical) {
  std::string Src = readReductionTgr();
  ASSERT_FALSE(Src.empty())
      << "examples/reduction.tgr missing at " << TGR_REDUCTION_TGR_PATH;
  EXPECT_NE(Src.find("__codelet"), std::string::npos);
}

TEST(PrintAfterAllGolden, DumpIsByteStableAcrossThreadCounts) {
  std::string Dump1 = dumpWithThreads(1);
  std::string Dump4 = dumpWithThreads(4);
  ASSERT_FALSE(Dump1.empty());
  // The whole point: host parallelism must not reorder or interleave the
  // per-pass dump stream.
  EXPECT_EQ(Dump1, Dump4);
}

TEST(PrintAfterAllGolden, DumpCarriesTheExpectedPassHeaders) {
  std::string Dump = dumpWithThreads(1);
  // Golden structural prefix: every lowering runs codelet-select first and
  // dumps under the LLVM-style header tools grep for.
  ASSERT_FALSE(Dump.empty());
  EXPECT_EQ(Dump.rfind("*** IR Dump After ", 0), 0u) << Dump.substr(0, 80);
  for (const char *Header :
       {"*** IR Dump After codelet-select ***",
        "*** IR Dump After kernel-scaffold ***",
        "*** IR Dump After coop-lower ***",
        "*** IR Dump After verify ***",
        "*** IR Dump After bytecode-prep ***"})
    EXPECT_NE(Dump.find(Header), std::string::npos) << Header;
  // After kernel-scaffold the dump is real CUDA text for the kernel.
  EXPECT_NE(Dump.find("__global__"), std::string::npos);
}

} // namespace
