//===- VerifyEachTest.cpp - ir::Verifier rejection paths under verify-each ===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// Drives PassManager<ir::Kernel> pipelines whose passes deliberately emit
// malformed IR, with ir::verifyKernel installed as the per-pass verifier.
// Each fixture checks that --verify-each converts the structural defect
// into an Expected error tagged with the name of the offending pass —
// the observability contract tools rely on to localize miscompiles.
//
//===----------------------------------------------------------------------===//

#include "ir/KernelIR.h"
#include "ir/Verifier.h"
#include "pm/PassManager.h"
#include "synth/KernelSynthesizer.h"
#include "synth/ReductionSpectrum.h"
#include "tangram/Tangram.h"

#include <gtest/gtest.h>

using namespace tangram;
using namespace tangram::ir;

namespace {

/// One kernel being built up by a pipeline (the unit type).
struct KernelUnit {
  Module M;
  Kernel *K = nullptr;
};

pm::PassManager<KernelUnit> makeVerifyingPM() {
  pm::PassManager<KernelUnit> PM;
  PM.setForceVerifyEach(true);
  PM.setVerifier([](const KernelUnit &U) {
    std::vector<std::string> Errors;
    if (U.K)
      verifyKernel(*U.K, Errors);
    return Errors;
  });
  PM.addPass("make-kernel", [](KernelUnit &U) {
    U.K = U.M.addKernel("fixture");
    return support::Status::success();
  });
  return PM;
}

void expectTaggedFailure(const support::Status &S, const char *PassName,
                         const char *Detail) {
  EXPECT_EQ(S.Code, support::StatusCode::SynthesisError);
  EXPECT_NE(S.Message.find(std::string("verifier after pass '") + PassName +
                           "'"),
            std::string::npos)
      << S.Message;
  EXPECT_NE(S.Message.find(Detail), std::string::npos) << S.Message;
}

TEST(VerifyEach, CatchesUndefinedLocalAfterOffendingPass) {
  pm::PassManager<KernelUnit> PM = makeVerifyingPM();
  PM.addPass("inject-undefined-local", [](KernelUnit &U) {
    // Use a local in an assignment without ever declaring it.
    Local *X = U.K->addLocal("ghost", ScalarType::I32);
    U.K->getBody().push_back(
        U.M.create<AssignStmt>(X, U.M.constI(1)));
    return support::Status::success();
  });
  KernelUnit U;
  expectTaggedFailure(PM.run(U), "inject-undefined-local",
                      "before its declaration");
}

TEST(VerifyEach, CatchesTypeMisuseAfterOffendingPass) {
  pm::PassManager<KernelUnit> PM = makeVerifyingPM();
  PM.addPass("inject-float-rem", [](KernelUnit &U) {
    // '%' on floating-point operands is a type error in this IR.
    Local *X = U.K->addLocal("x", ScalarType::F32);
    U.K->getBody().push_back(U.M.create<DeclLocalStmt>(
        X, U.M.binary(BinOp::Rem, U.M.constF(1.0), U.M.constF(2.0),
                      ScalarType::F32)));
    return support::Status::success();
  });
  KernelUnit U;
  expectTaggedFailure(PM.run(U), "inject-float-rem",
                      "floating-point operands");
}

TEST(VerifyEach, CatchesPointerParamUsedAsScalar) {
  pm::PassManager<KernelUnit> PM = makeVerifyingPM();
  PM.addPass("inject-pointer-as-scalar", [](KernelUnit &U) {
    Param *P = U.K->addPointerParam("buf", ScalarType::F32);
    Local *X = U.K->addLocal("x", ScalarType::F32);
    U.K->getBody().push_back(
        U.M.create<DeclLocalStmt>(X, U.M.ref(P)));
    return support::Status::success();
  });
  KernelUnit U;
  expectTaggedFailure(PM.run(U), "inject-pointer-as-scalar",
                      "used as a scalar");
}

TEST(VerifyEach, CatchesBarrierInsideDivergentBranch) {
  pm::PassManager<KernelUnit> PM = makeVerifyingPM();
  PM.addPass("inject-divergent-barrier", [](KernelUnit &U) {
    std::vector<Stmt *> Then = {U.M.create<BarrierStmt>()};
    U.K->getBody().push_back(U.M.create<IfStmt>(
        U.M.cmp(BinOp::EQ, U.M.special(SpecialReg::ThreadIdxX),
                U.M.constU(0)),
        std::move(Then), std::vector<Stmt *>{}));
    return support::Status::success();
  });
  KernelUnit U;
  expectTaggedFailure(PM.run(U), "inject-divergent-barrier",
                      "divergent control flow");
}

TEST(VerifyEach, FirstDefectWinsWhenLaterPassesWouldAlsoCorrupt) {
  pm::PassManager<KernelUnit> PM = makeVerifyingPM();
  PM.addPass("inject-bad-shuffle", [](KernelUnit &U) {
    Local *X = U.K->addLocal("x", ScalarType::F32);
    U.K->getBody().push_back(U.M.create<DeclLocalStmt>(X, U.M.constF(0.0)));
    U.K->getBody().push_back(U.M.create<AssignStmt>(
        X, U.M.create<ShuffleExpr>(ShuffleMode::Down, U.M.ref(X),
                                   U.M.constI(1), /*Width=*/20)));
    return support::Status::success();
  });
  bool SecondRan = false;
  PM.addPass("would-corrupt-more", [&SecondRan](KernelUnit &) {
    SecondRan = true;
    return support::Status::success();
  });
  KernelUnit U;
  expectTaggedFailure(PM.run(U), "inject-bad-shuffle", "power of two");
  EXPECT_FALSE(SecondRan);
}

TEST(VerifyEach, CleanPipelineStillSucceeds) {
  pm::PassManager<KernelUnit> PM = makeVerifyingPM();
  PM.addPass("well-formed-body", [](KernelUnit &U) {
    Local *X = U.K->addLocal("x", ScalarType::I32);
    U.K->getBody().push_back(
        U.M.create<DeclLocalStmt>(X, U.M.constI(7)));
    return support::Status::success();
  });
  KernelUnit U;
  EXPECT_TRUE(PM.run(U).ok());
}

// End-to-end: the real lowering pipeline stays verifier-clean after every
// pass when the facade is created with VerifyEach on, so --verify-each is
// a no-op on healthy input (only malformed IR trips it).
TEST(VerifyEach, RealLoweringPipelineIsVerifierCleanPerPass) {
  TangramReduction::Options Opts;
  Opts.PM.VerifyEach = true;
  auto TR = TangramReduction::create(Opts);
  ASSERT_TRUE(static_cast<bool>(TR)) << TR.status().toString();
  const synth::SearchSpace &Space = (*TR)->getSearchSpace();
  ASSERT_FALSE(Space.Pruned.empty());
  for (size_t I = 0; I != Space.Pruned.size() && I != 4; ++I) {
    auto V = (*TR)->synthesize(Space.Pruned[I]);
    EXPECT_TRUE(static_cast<bool>(V))
        << Space.Pruned[I].getName() << ": " << V.status().toString();
  }
}

} // namespace
