//===- OpMatrixRaceTest.cpp - RaceCheck over the op x dtype matrix ----------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// The race-freedom guarantee multiplied by the reduce::OpDef axis: every
// representative variant stays clean for every (op, dtype) spectrum point
// — including the CAS-loop lowerings (float min/max) and the pair-carrying
// arg-reductions — and produces the host-reference-exact value AND index.
// Spectrum points the legality lattice marks Illegal must be refused with
// a structured SynthesisError, never lowered into a broken kernel.
//
// Registered under the `op-matrix` ctest label (tier1-opmatrix preset).
//
//===----------------------------------------------------------------------===//

#include "engine/ExecutionEngine.h"
#include "reduce/OpDef.h"
#include "tangram/Tangram.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

using namespace tangram;
using namespace tangram::synth;

namespace {

struct MatrixPoint {
  ReduceOp Op;
  ir::ScalarType Elem;
};

std::string pointName(const MatrixPoint &P) {
  return std::string(getReduceOpSpelling(P.Op)) + "_" +
         reduce::getScalarTypeSpelling(P.Elem);
}

/// The satellite matrix: {Add, Min, Max, ArgMax} x {F32, I32, I64}.
const MatrixPoint Matrix[] = {
    {ReduceOp::Add, ir::ScalarType::F32},
    {ReduceOp::Add, ir::ScalarType::I32},
    {ReduceOp::Add, ir::ScalarType::I64},
    {ReduceOp::Min, ir::ScalarType::F32},
    {ReduceOp::Min, ir::ScalarType::I32},
    {ReduceOp::Min, ir::ScalarType::I64},
    {ReduceOp::Max, ir::ScalarType::F32},
    {ReduceOp::Max, ir::ScalarType::I32},
    {ReduceOp::Max, ir::ScalarType::I64},
    {ReduceOp::ArgMax, ir::ScalarType::F32},
    {ReduceOp::ArgMax, ir::ScalarType::I32},
    {ReduceOp::ArgMax, ir::ScalarType::I64},
};

TangramReduction &facadeFor(const MatrixPoint &P) {
  // One facade per spectrum point, shared across tests so each point
  // compiles its spectrum once.
  static std::map<std::pair<ReduceOp, ir::ScalarType>,
                  std::unique_ptr<TangramReduction>>
      Cache;
  auto Key = std::make_pair(P.Op, P.Elem);
  auto It = Cache.find(Key);
  if (It == Cache.end()) {
    TangramReduction::Options Opts;
    Opts.Op = P.Op;
    Opts.Elem = P.Elem;
    auto TR = TangramReduction::create(Opts);
    EXPECT_TRUE(TR.ok()) << pointName(P) << ": " << TR.status().toString();
    It = Cache.emplace(Key, std::move(*TR)).first;
  }
  return *It->second;
}

class OpMatrix : public ::testing::TestWithParam<MatrixPoint> {};

/// Deterministic input with a unique extremum (so arg-reduction indices
/// are unambiguous) and values small enough for exact float sums.
void fillInput(sim::Device &Dev, sim::BufferId In, size_t N,
               reduce::HostAccumulator &Ref) {
  for (size_t I = 0; I != N; ++I) {
    long long IV = static_cast<long long>((I * 37) % 4099) - 2000;
    if (I == N / 3) // One unique global extremum in both directions.
      IV = 5000;
    if (I == 2 * N / 3)
      IV = -5000;
    sim::Cell *C = Dev.get(In).writable(I);
    C->I = IV;
    C->F = static_cast<double>(IV) * 0.25;
    Ref.accumulate(C->F, C->I, static_cast<long long>(I));
  }
}

TEST_P(OpMatrix, RepresentativeVariantsAreRaceFreeAndHostExact) {
  const MatrixPoint &P = GetParam();
  TangramReduction &TR = facadeFor(P);
  const size_t N = 1 << 12;

  unsigned ArchCount = 0;
  const sim::ArchDesc *Archs = sim::getAllArchs(ArchCount);
  for (unsigned A = 0; A != ArchCount; ++A) {
    const sim::ArchDesc &Arch = Archs[A];
    bool Illegal = reduce::atomicLegality(P.Op, P.Elem, Arch.Gen) ==
                   reduce::AtomicSupport::Illegal;
    // Corners of the search space: serial-combine, global-atomic,
    // shared-atomic, and the shuffle hybrid.
    for (const char *Label : {"a", "n", "m", "p"}) {
      const VariantDescriptor *V =
          findByFigure6Label(TR.getSearchSpace(), Label);
      ASSERT_NE(V, nullptr) << Label;
      std::string Cell =
          pointName(P) + " / " + Arch.Name + " / " + V->getName();

      engine::DiagnoseRequest DR;
      DR.Kind = engine::DiagnoseKind::Race;
      DR.Desc = *V;
      DR.N = N;
      auto Report = TR.diagnose(Arch, DR);
      if (Illegal) {
        // argmax over 64-bit elements on Kepler: the OpDef lattice says
        // no atomic realization exists — synthesis must refuse.
        ASSERT_FALSE(Report.ok()) << Cell;
        EXPECT_EQ(Report.status().Code, support::StatusCode::SynthesisError)
            << Cell << ": " << Report.status().toString();
        continue;
      }
      ASSERT_TRUE(Report.ok()) << Cell << ": "
                               << Report.status().toString();
      EXPECT_TRUE(Report->Race.clean()) << Cell;

      // Functional run against the table-driven host reference: values
      // AND indices must match exactly.
      engine::ExecutionEngine &E = TR.engineFor(Arch);
      size_t Mark = E.deviceMark();
      sim::BufferId In = E.getDevice().alloc(P.Elem, N);
      reduce::HostAccumulator Ref(P.Op, P.Elem);
      fillInput(E.getDevice(), In, N, Ref);
      auto Out =
          E.run(engine::ReduceRequest{.Desc = *V, .In = In, .N = N});
      E.deviceRelease(Mark);
      ASSERT_TRUE(Out.ok()) << Cell << ": " << Out.status().toString();
      if (ir::isFloatType(P.Elem))
        EXPECT_EQ(Out->FloatValue, Ref.valueF()) << Cell;
      else
        EXPECT_EQ(Out->IntValue, Ref.valueI()) << Cell;
      if (isArgReduce(P.Op))
        EXPECT_EQ(Out->IndexValue, Ref.index()) << Cell;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OpMatrix, ::testing::ValuesIn(Matrix),
    [](const ::testing::TestParamInfo<MatrixPoint> &Info) {
      return pointName(Info.param);
    });

} // namespace
