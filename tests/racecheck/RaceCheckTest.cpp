//===- RaceCheckTest.cpp - Dynamic race-detector tests -----------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// Both directions of the RaceCheck contract:
//
//  - every variant the enumerator produces is race-free on every
//    architecture (the synthesized synchronization really is sufficient);
//  - stripping the shared-atomic qualifier or the global-atomic Map
//    lowering from curated variants seeds a race the detector reports,
//    with a diagnostic that names the codelet source line.
//
//===----------------------------------------------------------------------===//

#include "engine/ExecutionEngine.h"
#include "ir/Bytecode.h"
#include "ir/Transforms.h"
#include "tangram/Tangram.h"

#include <gtest/gtest.h>

using namespace tangram;
using namespace tangram::synth;

namespace {

TangramReduction &facade() {
  static std::unique_ptr<TangramReduction> TR = [] {
    auto T = TangramReduction::create();
    EXPECT_TRUE(T.ok()) << T.status().toString();
    return std::move(*T);
  }();
  return *TR;
}

/// One race campaign via the request-shaped diagnose() entry point.
support::Expected<engine::RaceReport>
raceDiagnose(const TangramReduction &TR, const VariantDescriptor &V,
             const sim::ArchDesc &Arch, size_t N) {
  engine::DiagnoseRequest DR;
  DR.Kind = engine::DiagnoseKind::Race;
  DR.Desc = V;
  DR.N = N;
  auto Report = TR.diagnose(Arch, DR);
  if (!Report)
    return Report.status();
  return Report->Race;
}

std::string renderAll(const TangramReduction &TR,
                      const engine::RaceReport &Report) {
  std::string Out;
  for (const sim::RaceDiagnostic &D : Report.Diagnostics)
    Out += TR.renderRace(D) + "\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Direction 1: the enumerated space is race-free everywhere.
//===----------------------------------------------------------------------===//

class CleanSweep : public ::testing::TestWithParam<int> {};

TEST_P(CleanSweep, EveryEnumeratedVariantIsRaceFree) {
  unsigned Count = 0;
  const sim::ArchDesc *Archs = sim::getAllArchs(Count);
  const sim::ArchDesc &Arch = Archs[GetParam()];
  TangramReduction &TR = facade();
  for (const VariantDescriptor &V : TR.getSearchSpace().All) {
    auto Report = raceDiagnose(TR, V, Arch, 1 << 12);
    ASSERT_TRUE(Report.ok())
        << V.getName() << ": " << Report.status().toString();
    EXPECT_TRUE(Report->clean())
        << V.getName() << " on " << Arch.Name << ":\n"
        << renderAll(TR, *Report);
    EXPECT_FALSE(Report->Truncated) << V.getName();
    EXPECT_EQ(Report->LaunchCount, V.usesSecondKernel() ? 2u : 1u)
        << V.getName();
  }
}

std::string archName(const ::testing::TestParamInfo<int> &Info) {
  return Info.param == 0   ? "Kepler"
         : Info.param == 1 ? "Maxwell"
                           : "Pascal";
}

INSTANTIATE_TEST_SUITE_P(AllArchs, CleanSweep, ::testing::Values(0, 1, 2),
                         archName);

TEST(RaceCheck, SecondKernelVariantCoversBothLaunches) {
  // The pruned set keeps only atomic-grid versions, so the two-kernel
  // aggregation path (Listing 1) needs an explicit descriptor.
  TangramReduction &TR = facade();
  const VariantDescriptor *TwoKernel = nullptr;
  for (const VariantDescriptor &V : TR.getSearchSpace().All)
    if (V.usesSecondKernel() && V.Coop != CoopKind::SerialThread0) {
      TwoKernel = &V;
      break;
    }
  ASSERT_NE(TwoKernel, nullptr);
  auto Report =
      raceDiagnose(TR, *TwoKernel, sim::getMaxwellGTX980(), 1 << 12);
  ASSERT_TRUE(Report.ok()) << Report.status().toString();
  EXPECT_EQ(Report->LaunchCount, 2u);
  EXPECT_TRUE(Report->clean()) << renderAll(TR, *Report);
}

TEST(RaceCheck, EngineReportsMultiBlockGridsClean) {
  // Grid-atomic combine across many blocks: the cross-block accesses are
  // atomic-vs-atomic, which the detector must not flag.
  TangramReduction &TR = facade();
  VariantDescriptor V =
      *findByFigure6Label(TR.getSearchSpace(), "n");
  V.BlockSize = 64; // 1<<12 elements / 64 = 64 blocks.
  engine::ExecutionEngine &E = TR.engineFor(sim::getPascalP100());
  engine::DiagnoseRequest DR;
  DR.Kind = engine::DiagnoseKind::Race;
  DR.Desc = V;
  DR.N = 1 << 12;
  auto Full = E.diagnose(DR);
  ASSERT_TRUE(Full.ok()) << Full.status().toString();
  const engine::RaceReport &Report = Full->Race;
  EXPECT_TRUE(Report.clean()) << renderAll(TR, Report);
}

//===----------------------------------------------------------------------===//
// Direction 2: seeded races are caught and located.
//===----------------------------------------------------------------------===//

/// Synthesizes \p Desc, strips atomics in the selected memory space(s)
/// from the main kernel, recompiles, and runs the intentionally racy
/// variant under RaceCheck on \p Arch.
engine::RaceReport seedAndCheck(const VariantDescriptor &Desc,
                                const sim::ArchDesc &Arch, bool Shared,
                                bool Global, size_t N) {
  TangramReduction &TR = facade();
  auto S = TR.synthesize(Desc);
  EXPECT_TRUE(S.ok()) << S.status().toString();
  synth::SynthesizedVariant &V = **S;
  ir::Kernel *K = V.M->getKernel(V.K->getName());
  EXPECT_NE(K, nullptr);
  ir::TransformStats Stats = ir::demoteAtomics(*V.M, *K, Shared, Global);
  EXPECT_GT(Stats.AtomicsDemoted, 0u) << Desc.getName();
  V.Compiled = ir::compileKernel(*K);

  engine::ExecutionEngine &E = TR.engineFor(Arch);
  size_t Mark = E.deviceMark();
  sim::BufferId In = E.getDevice().alloc(V.Elem, N);
  for (size_t I = 0; I != N; ++I) {
    sim::Cell *C = E.getDevice().get(In).writable(I);
    C->I = static_cast<long long>(I % 17);
    C->F = static_cast<double>(I % 17);
  }
  engine::ReduceRequest Req;
  Req.In = In;
  Req.N = N;
  Req.Mode = sim::ExecMode::RaceCheck;
  auto Run = E.run(Req, V);
  E.deviceRelease(Mark);
  EXPECT_TRUE(Run.ok()) << Run.status().toString();

  engine::RaceReport Report;
  if (Run) {
    Report.Diagnostics = Run->Launch.Races;
    Report.Conflicts = Run->Launch.RaceConflicts;
    Report.Truncated = Run->Launch.RaceCheckTruncated;
    Report.LaunchCount = V.SecondStage ? 2 : 1;
  }
  return Report;
}

TEST(SeededRace, SharedV1WithoutAtomicQualifierIsFlagged) {
  // Fig. 3a: every thread atomically accumulates into one shared cell.
  // Without the qualifier all 32 lanes of a warp RMW the same address in
  // the same lockstep step — a same-step write-write race.
  TangramReduction &TR = facade();
  VariantDescriptor V = *findByFigure6Label(TR.getSearchSpace(), "n");
  engine::RaceReport Report =
      seedAndCheck(V, sim::getMaxwellGTX980(), /*Shared=*/true,
                   /*Global=*/false, 1 << 10);
  ASSERT_FALSE(Report.clean());
  ASSERT_FALSE(Report.Diagnostics.empty());
  const sim::RaceDiagnostic &D = Report.Diagnostics.front();
  EXPECT_EQ(D.Space, sim::MemSpace::Shared);
  // The diagnostic maps back to a codelet source line.
  std::string Rendered = TR.renderRace(D);
  EXPECT_NE(Rendered.find("reduction.tgr:"), std::string::npos) << Rendered;
}

TEST(SeededRace, SharedV2WithoutAtomicQualifierIsFlagged) {
  // Fig. 3b: per-warp trees then one shared-atomic combine per warp.
  // Demoted, the warp leaders race write-write on the accumulator across
  // warps (no barrier between their combines).
  TangramReduction &TR = facade();
  VariantDescriptor V = *findByFigure6Label(TR.getSearchSpace(), "o");
  engine::RaceReport Report =
      seedAndCheck(V, sim::getPascalP100(), /*Shared=*/true,
                   /*Global=*/false, 1 << 10);
  ASSERT_FALSE(Report.clean());
  ASSERT_FALSE(Report.Diagnostics.empty());
  EXPECT_EQ(Report.Diagnostics.front().Space, sim::MemSpace::Shared);
  std::string Rendered = TR.renderRace(Report.Diagnostics.front());
  EXPECT_NE(Rendered.find("reduction.tgr:"), std::string::npos) << Rendered;
}

TEST(SeededRace, GlobalCombineWithoutMapLoweringIsFlagged) {
  // Listing 2's grid combine demoted to a plain load/op/store: blocks are
  // never ordered against each other, so any two blocks race on the
  // accumulator cell.
  TangramReduction &TR = facade();
  VariantDescriptor V = *findByFigure6Label(TR.getSearchSpace(), "n");
  ASSERT_EQ(V.GridScheme, GridCombine::GlobalAtomic);
  V.BlockSize = 64; // 4096 elements -> 64 blocks sharing one accumulator.
  engine::RaceReport Report =
      seedAndCheck(V, sim::getKeplerK40c(), /*Shared=*/false,
                   /*Global=*/true, 1 << 12);
  ASSERT_FALSE(Report.clean());
  ASSERT_FALSE(Report.Diagnostics.empty());
  bool SawGlobal = false;
  for (const sim::RaceDiagnostic &D : Report.Diagnostics)
    SawGlobal |= D.Space == sim::MemSpace::Global;
  EXPECT_TRUE(SawGlobal);
}

TEST(SeededRace, DiagnosticNamesKernelAndMemory) {
  TangramReduction &TR = facade();
  VariantDescriptor V = *findByFigure6Label(TR.getSearchSpace(), "n");
  engine::RaceReport Report =
      seedAndCheck(V, sim::getMaxwellGTX980(), /*Shared=*/true,
                   /*Global=*/false, 1 << 10);
  ASSERT_FALSE(Report.Diagnostics.empty());
  const sim::RaceDiagnostic &D = Report.Diagnostics.front();
  EXPECT_FALSE(D.KernelName.empty());
  EXPECT_FALSE(D.MemName.empty());
  std::string Body = D.render();
  EXPECT_NE(Body.find(D.MemName), std::string::npos) << Body;
}

TEST(SeededRace, ReportIsDeduplicatedAndCapped) {
  // 1024 threads all racing on one cell must not produce 1024 diagnostics:
  // conflicts are counted raw but diagnostics dedup to the racing PC pair.
  TangramReduction &TR = facade();
  VariantDescriptor V = *findByFigure6Label(TR.getSearchSpace(), "n");
  engine::RaceReport Report =
      seedAndCheck(V, sim::getMaxwellGTX980(), /*Shared=*/true,
                   /*Global=*/false, 1 << 10);
  ASSERT_FALSE(Report.clean());
  EXPECT_GT(Report.Conflicts, Report.Diagnostics.size());
  EXPECT_LE(Report.Diagnostics.size(), size_t(16));
}

} // namespace
