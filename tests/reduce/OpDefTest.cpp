//===- OpDefTest.cpp - Reduction-operator table tests -----------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// The reduce::OpDef contract: the atomic legality lattice matches the
// documented per-generation rules, identities are true identities under
// the table's own combine, spellings round-trip through the parsers, and
// the HostAccumulator folds every op — including the index-payload ones —
// order-independently.
//
//===----------------------------------------------------------------------===//

#include "reduce/OpDef.h"

#include <gtest/gtest.h>

#include <limits>

using namespace tangram;
using namespace tangram::reduce;

using ir::ScalarType;
using sim::ArchGeneration;

namespace {

constexpr ArchGeneration AllGens[] = {ArchGeneration::Kepler,
                                      ArchGeneration::Maxwell,
                                      ArchGeneration::Pascal};

//===----------------------------------------------------------------------===//
// Legality lattice
//===----------------------------------------------------------------------===//

TEST(AtomicLegality, I32ArithmeticIsNativeEverywhere) {
  for (ArchGeneration Gen : AllGens)
    for (ReduceOp Op :
         {ReduceOp::Add, ReduceOp::Sub, ReduceOp::Min, ReduceOp::Max})
      EXPECT_EQ(atomicLegality(Op, ScalarType::I32, Gen),
                AtomicSupport::Native)
          << getReduceOpName(Op);
}

TEST(AtomicLegality, F32AddNativeButF32MinMaxNeedsCasEverywhere) {
  for (ArchGeneration Gen : AllGens) {
    EXPECT_EQ(atomicLegality(ReduceOp::Add, ScalarType::F32, Gen),
              AtomicSupport::Native);
    EXPECT_EQ(atomicLegality(ReduceOp::Min, ScalarType::F32, Gen),
              AtomicSupport::CasLoop);
    EXPECT_EQ(atomicLegality(ReduceOp::Max, ScalarType::F32, Gen),
              AtomicSupport::CasLoop);
    EXPECT_EQ(atomicLegality(ReduceOp::Sub, ScalarType::F32, Gen),
              AtomicSupport::CasLoop);
  }
}

TEST(AtomicLegality, F64AddNativeOnlyOnPascal) {
  EXPECT_EQ(atomicLegality(ReduceOp::Add, ScalarType::F64,
                           ArchGeneration::Kepler),
            AtomicSupport::CasLoop);
  EXPECT_EQ(atomicLegality(ReduceOp::Add, ScalarType::F64,
                           ArchGeneration::Maxwell),
            AtomicSupport::CasLoop);
  EXPECT_EQ(atomicLegality(ReduceOp::Add, ScalarType::F64,
                           ArchGeneration::Pascal),
            AtomicSupport::Native);
}

TEST(AtomicLegality, I64MinMaxNeedsExtendedAtomicsUnit) {
  for (ReduceOp Op : {ReduceOp::Min, ReduceOp::Max}) {
    EXPECT_EQ(atomicLegality(Op, ScalarType::I64, ArchGeneration::Kepler),
              AtomicSupport::CasLoop);
    EXPECT_EQ(atomicLegality(Op, ScalarType::I64, ArchGeneration::Maxwell),
              AtomicSupport::Native);
    EXPECT_EQ(atomicLegality(Op, ScalarType::I64, ArchGeneration::Pascal),
              AtomicSupport::Native);
  }
}

TEST(AtomicLegality, ArgOpsAlwaysExpandAnd64BitIsIllegalOnKepler) {
  for (ReduceOp Op : {ReduceOp::ArgMin, ReduceOp::ArgMax}) {
    // 32-bit elements pack into a 64-bit CAS word on every generation.
    for (ArchGeneration Gen : AllGens)
      for (ScalarType Elem : {ScalarType::I32, ScalarType::F32})
        EXPECT_EQ(atomicLegality(Op, Elem, Gen), AtomicSupport::CasLoop)
            << getReduceOpName(Op);
    // 64-bit elements need the scoped-lock emulation: forward progress
    // only holds from Maxwell on.
    for (ScalarType Elem : {ScalarType::I64, ScalarType::F64}) {
      EXPECT_EQ(atomicLegality(Op, Elem, ArchGeneration::Kepler),
                AtomicSupport::Illegal);
      EXPECT_EQ(atomicLegality(Op, Elem, ArchGeneration::Maxwell),
                AtomicSupport::CasLoop);
      EXPECT_EQ(atomicLegality(Op, Elem, ArchGeneration::Pascal),
                AtomicSupport::CasLoop);
    }
  }
}

//===----------------------------------------------------------------------===//
// Descriptor rows and identities
//===----------------------------------------------------------------------===//

TEST(OpDefTable, RowsAreSelfConsistent) {
  for (ReduceOp Op : {ReduceOp::Add, ReduceOp::Sub, ReduceOp::Max,
                      ReduceOp::Min, ReduceOp::ArgMax, ReduceOp::ArgMin,
                      ReduceOp::Any}) {
    const OpDef &D = getOpDef(Op);
    EXPECT_EQ(D.Op, Op);
    EXPECT_STREQ(D.Name, getReduceOpName(Op));
    EXPECT_STREQ(D.Spelling, getReduceOpSpelling(Op));
    EXPECT_EQ(D.NeedsIndex, isArgReduce(Op));
    // Every current row is order-insensitive (Sub by the running-
    // difference argument documented on the field).
    EXPECT_TRUE(D.Commutative && D.Associative) << D.Name;
    ASSERT_NE(D.CombineF, nullptr);
    ASSERT_NE(D.CombineI, nullptr);
    ASSERT_NE(D.FinalizeF, nullptr);
    ASSERT_NE(D.FinalizeI, nullptr);
  }
}

TEST(OpDefTable, IdentitiesAreNeutralUnderCombine) {
  for (ReduceOp Op : {ReduceOp::Add, ReduceOp::Max, ReduceOp::Min,
                      ReduceOp::Any}) {
    const OpDef &D = getOpDef(Op);
    for (ScalarType Elem : {ScalarType::F32, ScalarType::I32,
                            ScalarType::I64, ScalarType::F64}) {
      IdentityCell Id = getIdentity(Op, Elem);
      for (double V : {-7.5, 0.0, 42.0})
        EXPECT_EQ(D.FinalizeF(D.CombineF(Id.F, V)), D.FinalizeF(V))
            << D.Name;
      for (long long V : {-7ll, 0ll, 42ll})
        EXPECT_EQ(D.FinalizeI(D.CombineI(Id.I, V)), D.FinalizeI(V))
            << D.Name;
    }
  }
}

TEST(OpDefTable, IdentityUsesElementTypeExtrema) {
  EXPECT_EQ(getIdentity(ReduceOp::Min, ScalarType::I64).I,
            std::numeric_limits<long long>::max());
  EXPECT_EQ(getIdentity(ReduceOp::Max, ScalarType::I64).I,
            std::numeric_limits<long long>::min());
  EXPECT_EQ(getIdentity(ReduceOp::Max, ScalarType::I32).I,
            std::numeric_limits<int>::min());
  EXPECT_EQ(getIdentity(ReduceOp::ArgMax, ScalarType::F32).Idx,
            ReduceIndexSentinel);
  EXPECT_EQ(getIdentity(ReduceOp::Add, ScalarType::F64).F, 0.0);
}

TEST(OpDefTable, KernelIdentityStaysInsideTrueIdentity) {
  // The printable near-extremes must stay on the identity side of zero
  // and never beat the true extrema.
  for (ScalarType Elem : {ScalarType::F32, ScalarType::F64}) {
    EXPECT_GE(getKernelIdentity(ReduceOp::Max, Elem).F,
              getIdentity(ReduceOp::Max, Elem).F);
    EXPECT_LE(getKernelIdentity(ReduceOp::Min, Elem).F,
              getIdentity(ReduceOp::Min, Elem).F);
    EXPECT_LT(getKernelIdentity(ReduceOp::Max, Elem).F, 0);
    EXPECT_GT(getKernelIdentity(ReduceOp::Min, Elem).F, 0);
  }
  // Integer kernels can spell the exact extrema.
  EXPECT_EQ(getKernelIdentity(ReduceOp::Min, ScalarType::I64).I,
            getIdentity(ReduceOp::Min, ScalarType::I64).I);
}

//===----------------------------------------------------------------------===//
// Spellings
//===----------------------------------------------------------------------===//

TEST(Spellings, ScalarTypeRoundTrip) {
  for (ScalarType Ty : {ScalarType::I32, ScalarType::U32, ScalarType::F32,
                        ScalarType::I64, ScalarType::F64}) {
    ScalarType Parsed = ScalarType::I32;
    ASSERT_TRUE(parseScalarType(getScalarTypeSpelling(Ty), Parsed));
    EXPECT_EQ(Parsed, Ty);
  }
}

TEST(Spellings, LanguageAliasesAccepted) {
  ScalarType Ty = ScalarType::U32;
  ASSERT_TRUE(parseScalarType("float", Ty));
  EXPECT_EQ(Ty, ScalarType::F32);
  ASSERT_TRUE(parseScalarType("int", Ty));
  EXPECT_EQ(Ty, ScalarType::I32);
  ASSERT_TRUE(parseScalarType("long", Ty));
  EXPECT_EQ(Ty, ScalarType::I64);
  ASSERT_TRUE(parseScalarType("double", Ty));
  EXPECT_EQ(Ty, ScalarType::F64);
  EXPECT_FALSE(parseScalarType("quad", Ty));
}

//===----------------------------------------------------------------------===//
// HostAccumulator
//===----------------------------------------------------------------------===//

TEST(HostAccumulator, ArgMaxTracksIndexAndBreaksTiesLow) {
  HostAccumulator Acc(ReduceOp::ArgMax, ScalarType::F32);
  double Vals[] = {1.0, 8.0, 3.0, 8.0, -2.0};
  for (long long I = 0; I != 5; ++I)
    Acc.accumulate(Vals[I], 0, I);
  EXPECT_EQ(Acc.valueF(), 8.0);
  EXPECT_EQ(Acc.index(), 1); // First of the tied maxima.
}

TEST(HostAccumulator, ArgMinUsesIntegerLaneForIntegerElements) {
  HostAccumulator Acc(ReduceOp::ArgMin, ScalarType::I64);
  long long Vals[] = {5, -9, 2, -9};
  for (long long I = 0; I != 4; ++I)
    Acc.accumulate(0, Vals[I], I);
  EXPECT_EQ(Acc.valueI(), -9);
  EXPECT_EQ(Acc.index(), 1);
}

TEST(HostAccumulator, PartialsRecombineExactly) {
  // Worker partials re-entering as (value, winning-index) elements must
  // reproduce the serial fold — the join step of the CPU baseline.
  long long Vals[] = {4, 17, 9, 17, 1, 0, 16, 3};
  HostAccumulator Serial(ReduceOp::ArgMax, ScalarType::I32);
  for (long long I = 0; I != 8; ++I)
    Serial.accumulate(0, Vals[I], I);

  HostAccumulator Lo(ReduceOp::ArgMax, ScalarType::I32);
  HostAccumulator Hi(ReduceOp::ArgMax, ScalarType::I32);
  for (long long I = 0; I != 4; ++I)
    Lo.accumulate(0, Vals[I], I);
  for (long long I = 4; I != 8; ++I)
    Hi.accumulate(0, Vals[I], I);
  HostAccumulator Join(ReduceOp::ArgMax, ScalarType::I32);
  Join.accumulate(0, Hi.valueI(), Hi.index()); // Order-independent.
  Join.accumulate(0, Lo.valueI(), Lo.index());
  EXPECT_EQ(Join.valueI(), Serial.valueI());
  EXPECT_EQ(Join.index(), Serial.index());
}

TEST(HostAccumulator, AnyNormalizesAtFinalizeAndIsIdempotent) {
  HostAccumulator Acc(ReduceOp::Any, ScalarType::I32);
  Acc.accumulate(0, 0, 0);
  EXPECT_EQ(Acc.valueI(), 0);
  Acc.accumulate(7, 7, 1);
  EXPECT_EQ(Acc.valueI(), 1);
  // Finalized partials re-enter without changing the answer.
  HostAccumulator Join(ReduceOp::Any, ScalarType::I32);
  Join.accumulate(static_cast<double>(Acc.valueI()), Acc.valueI(), 0);
  EXPECT_EQ(Join.valueI(), 1);
}

//===----------------------------------------------------------------------===//
// IR-level legality verification (--verify-each)
//===----------------------------------------------------------------------===//

TEST(VerifyAtomicLegality, FlagsIllegalAndUnderExpandedAtomics) {
  // A kernel doing `atomicArgMax` on i64 cells: Illegal on Kepler no
  // matter what, and still an error on Pascal once atomic-expand claims
  // to have run while the statement is left marked Native.
  ir::Module M;
  ir::Kernel *K = M.addKernel("probe");
  ir::Param *Out = K->addPointerParam("out", ScalarType::I64);
  ir::Local *V = K->addLocal("v", ScalarType::I64);
  K->getBody().push_back(M.create<ir::DeclLocalStmt>(V, M.constI(1)));
  K->getBody().push_back(M.create<ir::AtomicGlobalStmt>(
      ReduceOp::ArgMax, ir::AtomicScope::Device, Out, M.constI(0),
      M.ref(V)));

  std::vector<std::string> Errors;
  verifyAtomicLegality(*K, ScalarType::I64, ArchGeneration::Kepler,
                       /*Expanded=*/false, Errors);
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_NE(Errors[0].find("illegal"), std::string::npos) << Errors[0];

  Errors.clear();
  verifyAtomicLegality(*K, ScalarType::I64, ArchGeneration::Pascal,
                       /*Expanded=*/true, Errors);
  ASSERT_EQ(Errors.size(), 1u);

  // Before expansion the default Native marking is tolerated on Pascal.
  Errors.clear();
  verifyAtomicLegality(*K, ScalarType::I64, ArchGeneration::Pascal,
                       /*Expanded=*/false, Errors);
  EXPECT_TRUE(Errors.empty());
}

} // namespace
