//===- SemaTest.cpp - Semantic analysis unit tests --------------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "sema/Sema.h"

#include "lang/Parser.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "synth/ReductionSpectrum.h"

#include <gtest/gtest.h>

using namespace tangram;
using namespace tangram::lang;

namespace {

struct Checked {
  std::unique_ptr<SourceManager> SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::unique_ptr<ASTContext> Ctx;
  TranslationUnit TU;
  bool Ok = false;
};

Checked check(const std::string &Text) {
  Checked R;
  R.SM = std::make_unique<SourceManager>("test.tgr", Text);
  R.Diags = std::make_unique<DiagnosticEngine>(*R.SM);
  R.Ctx = std::make_unique<ASTContext>();
  Parser P(*R.SM, *R.Ctx, *R.Diags);
  R.TU = P.parseTranslationUnit();
  if (R.Diags->hasErrors())
    return R;
  sema::Sema S(*R.Ctx, *R.Diags);
  R.Ok = S.analyze(R.TU);
  return R;
}

TEST(Sema, CanonicalSourceChecksClean) {
  auto R = check(synth::getReductionSource());
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();
}

TEST(Sema, ClassifiesCodeletKinds) {
  auto R = check(synth::getReductionSource());
  ASSERT_TRUE(R.Ok) << R.Diags->renderAll();
  EXPECT_EQ(R.TU.findByTag("serial")->getCodeletClass(),
            CodeletClass::AtomicAutonomous);
  EXPECT_EQ(R.TU.findByTag("dist_tile")->getCodeletClass(),
            CodeletClass::Compound);
  EXPECT_EQ(R.TU.findByTag("dist_stride")->getCodeletClass(),
            CodeletClass::Compound);
  EXPECT_EQ(R.TU.findByTag("coop_tree")->getCodeletClass(),
            CodeletClass::Cooperative);
  EXPECT_EQ(R.TU.findByTag("shared_V1")->getCodeletClass(),
            CodeletClass::Cooperative);
  EXPECT_EQ(R.TU.findByTag("shared_V2")->getCodeletClass(),
            CodeletClass::Cooperative);
}

TEST(Sema, UndeclaredIdentifier) {
  auto R = check("__codelet int f() { return nothere; }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Diags->renderAll().find("undeclared identifier"),
            std::string::npos);
}

TEST(Sema, Redefinition) {
  auto R = check("__codelet int f() { int a = 0; int a = 1; return a; }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Diags->renderAll().find("redefinition"), std::string::npos);
}

TEST(Sema, ScopesAllowShadowingAcrossBlocks) {
  auto R = check("__codelet int f() {\n"
                 "  int a = 0;\n"
                 "  if (a == 0) { int b = 1; a = b; }\n"
                 "  if (a == 1) { int b = 2; a = b; }\n"
                 "  return a;\n"
                 "}");
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();
}

TEST(Sema, ForLoopVariableScopedToLoop) {
  auto R = check("__codelet int f() {\n"
                 "  for (int i = 0; i < 4; i += 1) { int x = i; x += 1; }\n"
                 "  return i;\n"
                 "}");
  EXPECT_FALSE(R.Ok);
}

TEST(Sema, AtomicQualifierRequiresShared) {
  auto R = check("__codelet int f() { _atomicAdd int x; return 0; }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Diags->renderAll().find("__shared"), std::string::npos);
}

TEST(Sema, AtomicSharedMustBeScalar) {
  auto R = check(
      "__codelet int f() { __shared _atomicAdd int x[4]; return 0; }");
  EXPECT_FALSE(R.Ok);
}

TEST(Sema, TunableCannotBeInitialized) {
  auto R = check("__codelet int f() { __tunable unsigned p = 4; return 0; }");
  EXPECT_FALSE(R.Ok);
}

TEST(Sema, ConstArrayNotAssignable) {
  auto R = check("__codelet int f(const Array<1,int> in) {\n"
                 "  in[0] = 1;\n"
                 "  return 0;\n"
                 "}");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Diags->renderAll().find("not assignable"), std::string::npos);
}

TEST(Sema, SharedArrayIsAssignable) {
  auto R = check("__codelet int f() {\n"
                 "  __shared int tmp[32];\n"
                 "  tmp[0] = 1;\n"
                 "  return tmp[0];\n"
                 "}");
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();
}

TEST(Sema, VectorMemberResolution) {
  auto R = check("__codelet __coop int f(const Array<1,int> in) {\n"
                 "  Vector vthread();\n"
                 "  return in[vthread.ThreadId() % vthread.MaxSize()];\n"
                 "}");
  ASSERT_TRUE(R.Ok) << R.Diags->renderAll();
}

TEST(Sema, UnknownMemberDiagnosed) {
  auto R = check("__codelet __coop int f() {\n"
                 "  Vector vthread();\n"
                 "  return vthread.Bogus();\n"
                 "}");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Diags->renderAll().find("no member"), std::string::npos);
}

TEST(Sema, MapAtomicApisResolve) {
  const char *Ops[4] = {"atomicAdd", "atomicSub", "atomicMax", "atomicMin"};
  ReduceOp Expect[4] = {ReduceOp::Add, ReduceOp::Sub, ReduceOp::Max,
                        ReduceOp::Min};
  for (int I = 0; I != 4; ++I) {
    std::string Src = "__codelet int f(const Array<1,int> in) {\n"
                      "  __tunable unsigned p;\n"
                      "  Sequence s(tiled);\n"
                      "  Map map(f, partition(in, p, s, s, s));\n"
                      "  map." +
                      std::string(Ops[I]) +
                      "();\n"
                      "  return f(map);\n"
                      "}";
    auto R = check(Src);
    ASSERT_TRUE(R.Ok) << R.Diags->renderAll();
    // Find the resolved member call.
    const auto &Body = R.TU.Codelets[0]->getBody()->getBody();
    const auto *M =
        cast<MemberCallExpr>(cast<Expr>(Body[3])->ignoreParens());
    EXPECT_EQ(M->getMemberKind(), MemberKind::MapAtomic);
    EXPECT_EQ(M->getAtomicOp(), Expect[I]);
  }
}

TEST(Sema, PartitionArityChecked) {
  auto R = check("__codelet int f(const Array<1,int> in) {\n"
                 "  __tunable unsigned p;\n"
                 "  Map map(f, partition(in, p));\n"
                 "  return f(map);\n"
                 "}");
  EXPECT_FALSE(R.Ok);
}

TEST(Sema, SpectrumCallResolvesAcrossCodelets) {
  auto R = check(synth::getReductionSource());
  ASSERT_TRUE(R.Ok);
  // The compound codelet's `return sum(map)` resolves as a spectrum call.
  const CodeletDecl *C = R.TU.findByTag("dist_tile");
  const auto *Ret = cast<ReturnStmt>(C->getBody()->getBody().back());
  const auto *Call = cast<CallExpr>(Ret->getValue()->ignoreParens());
  EXPECT_EQ(Call->getCalleeKind(), CalleeKind::Spectrum);
}

TEST(Sema, UnknownCalleeDiagnosed) {
  auto R = check("__codelet int f() { return g(); }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Diags->renderAll().find("unknown function"), std::string::npos);
}

TEST(Sema, CoopCannotUseMap) {
  auto R = check("__codelet __coop int f(const Array<1,int> in) {\n"
                 "  Vector vthread();\n"
                 "  __tunable unsigned p;\n"
                 "  Sequence s(tiled);\n"
                 "  Map map(f, partition(in, p, s, s, s));\n"
                 "  return 0;\n"
                 "}");
  EXPECT_FALSE(R.Ok);
}

TEST(Sema, FloatIntPromotion) {
  auto R = check("__codelet float f() {\n"
                 "  float x = 1.5;\n"
                 "  int y = 2;\n"
                 "  x = x + y;\n"
                 "  return x;\n"
                 "}");
  ASSERT_TRUE(R.Ok) << R.Diags->renderAll();
}

TEST(Sema, RemainderRequiresIntegers) {
  auto R = check("__codelet int f() { float x = 1.0; return 3 % x; }");
  EXPECT_FALSE(R.Ok);
}

TEST(Sema, VoidReturnMismatch) {
  auto R = check("__codelet void f() { return 3; }");
  EXPECT_FALSE(R.Ok);
}

} // namespace
