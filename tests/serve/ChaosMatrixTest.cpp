//===- ChaosMatrixTest.cpp - Serving-layer chaos acceptance ----------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// The chaos acceptance matrix: every ChaosKind x coalesced/direct x
// {Add, ArgMax} x {F32, I64}, asserting ZERO WRONG ANSWERS — every job
// either completes bit-identical to the chaos-free run (including the
// winning index lanes of arg-reductions) or fails with a clean, typed
// Status. Chaos may slow jobs down, degrade them through the failover
// chain, or refuse them; it must never corrupt them.
//
// The payloads make that assertable: every value is an exactly
// representable quarter-step with sums far below 2^24, so any fold order
// on any backend (batch variant, direct primary, selector portfolio,
// native CPU, host loop) produces the same bits, and each job has a
// unique extremum so arg-reductions have a unique winner.
//
// Plus two choreographed scenarios:
//  - the circuit-breaker lifecycle: a bounded quarantine storm trips the
//    lane breaker, jobs fast-fail to the degraded path while it is open,
//    and the half-open probe un-quarantines the primary and recovers;
//  - the deadline/batch race: a job whose deadline expires between
//    dequeue and batch launch (an injected queue delay) must complete
//    with DeadlineExceeded, not ride the launch.
//
//===----------------------------------------------------------------------===//

#include "serve/ReductionService.h"

#include "engine/ExecutionEngine.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

using namespace tangram;
using namespace tangram::serve;

using support::StatusCode;

namespace {

/// Deterministic exact payload for job \p J (see file header): small
/// quarter-step values with a distinct extremum at a distinct index.
JobSpec makeJob(ReduceOp Op, ir::ScalarType Elem, size_t J, size_t N) {
  JobSpec Job;
  Job.Op = Op;
  Job.Elem = Elem;
  for (size_t I = 0; I != N; ++I) {
    long long V = static_cast<long long>((I * 7 + J * 13) % 101) - 50;
    if (I == (J * 3) % N)
      V = 60 + static_cast<long long>(J); // Unique extremum, unique index.
    if (ir::isFloatType(Elem))
      Job.FloatData.push_back(static_cast<double>(V) * 0.25);
    else
      Job.IntData.push_back(V);
  }
  return Job;
}

struct MatrixPoint {
  ReduceOp Op;
  ir::ScalarType Elem;
};

std::string pointName(const MatrixPoint &P) {
  return std::string(getReduceOpSpelling(P.Op)) + "_" +
         reduce::getScalarTypeSpelling(P.Elem);
}

class ChaosMatrix : public ::testing::TestWithParam<MatrixPoint> {};

// For one (op, dtype) point: run the chaos-free reference once per
// coalescing mode, then replay the identical job stream under every
// chaos kind and compare.
TEST_P(ChaosMatrix, NoWrongAnswersUnderAnyCampaign) {
  const MatrixPoint P = GetParam();
  const size_t Sizes[] = {193, 64, 1, 100, 256, 31};
  unsigned KindCount = 0;
  const ChaosKind *Kinds = getAllChaosKinds(KindCount);

  for (bool Coalesce : {true, false}) {
    SCOPED_TRACE(Coalesce ? "coalesced" : "direct");
    ServiceOptions Base;
    Base.StartWorkers = false; // Pumped: chaos ordinals are deterministic.
    Base.Coalesce = Coalesce;

    // The chaos-free reference results, shared by every campaign below.
    ReductionService CleanSvc(Base);
    std::vector<std::future<support::Expected<JobResult>>> CleanF;
    for (size_t J = 0; J != std::size(Sizes); ++J)
      CleanF.push_back(CleanSvc.submit(makeJob(P.Op, P.Elem, J, Sizes[J])));
    CleanSvc.drainNow();
    std::vector<JobResult> Ref;
    for (auto &F : CleanF) {
      auto Out = F.get();
      ASSERT_TRUE(Out.ok()) << Out.status().toString();
      Ref.push_back(*Out);
    }

    for (unsigned K = 0; K != KindCount; ++K) {
      SCOPED_TRACE(getChaosKindName(Kinds[K]));
      ServiceOptions SO = Base;
      SO.Chaos.Kind = Kinds[K];
      SO.Chaos.Seed = 7;
      SO.Chaos.Period = 1; // Every eligible event fires...
      SO.Chaos.MaxFires = 3; // ...until the storm burns out: both the
                             // failure path and the recovery path run.
      SO.Chaos.DelaySeconds = 0.001;
      ReductionService Svc(SO);
      std::vector<std::future<support::Expected<JobResult>>> Futures;
      for (size_t J = 0; J != std::size(Sizes); ++J)
        Futures.push_back(Svc.submit(makeJob(P.Op, P.Elem, J, Sizes[J])));
      Svc.drainNow();

      unsigned Completed = 0, Refused = 0;
      for (size_t J = 0; J != Futures.size(); ++J) {
        auto Out = Futures[J].get();
        if (!Out.ok()) {
          // A refusal/failure must be a clean typed Status, never a
          // half-answer.
          ++Refused;
          EXPECT_NE(Out.code(), StatusCode::Ok);
          EXPECT_FALSE(Out.status().Message.empty());
          continue;
        }
        ++Completed;
        // Bitwise equality with the chaos-free run: degraded answers may
        // come from a different kernel, but exact payloads make every
        // fold order produce identical bits.
        EXPECT_EQ(Out->FloatValue, Ref[J].FloatValue) << "job " << J;
        EXPECT_EQ(Out->IntValue, Ref[J].IntValue) << "job " << J;
        if (isArgReduce(P.Op)) {
          EXPECT_EQ(Out->IndexValue, Ref[J].IndexValue) << "job " << J;
        }
      }
      EXPECT_EQ(Completed + Refused, std::size(Sizes)); // No silent drops.
      ServiceStats St = Svc.getStats();
      EXPECT_GT(St.ChaosInjected, 0u); // The campaign really ran.
      EXPECT_EQ(St.Completed, Completed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    OpDtypeMatrix, ChaosMatrix,
    ::testing::Values(MatrixPoint{ReduceOp::Add, ir::ScalarType::F32},
                      MatrixPoint{ReduceOp::Add, ir::ScalarType::I64},
                      MatrixPoint{ReduceOp::ArgMax, ir::ScalarType::F32},
                      MatrixPoint{ReduceOp::ArgMax, ir::ScalarType::I64}),
    [](const ::testing::TestParamInfo<MatrixPoint> &I) {
      return pointName(I.param);
    });

// The full breaker lifecycle, choreographed drain by drain: a bounded
// quarantine storm trips the lane breaker (attempt 1), an open breaker
// fast-fails to the degraded path (attempt 2), and after the cooldown the
// half-open probe un-quarantines the primary and recovers (attempt 3).
TEST(BreakerLifecycle, TripsFastFailsAndRecovers) {
  ServiceOptions SO;
  SO.StartWorkers = false;
  SO.Chaos.Kind = ChaosKind::QuarantineStorm;
  SO.Chaos.Period = 1;
  SO.Chaos.MaxFires = 2; // Storm covers attempts 1-2, then subsides.
  SO.Breaker.WindowSize = 4;
  SO.Breaker.MinSamples = 2;
  SO.Breaker.FailureRatio = 0.5;
  SO.Breaker.OpenSeconds = 1.0;
  SO.Breaker.ProbeSuccesses = 1;
  ReductionService Svc(SO);
  auto Submit = [&](size_t J) {
    return Svc.submit(makeJob(ReduceOp::Add, ir::ScalarType::F32, J, 64));
  };

  // Attempt 1: the storm quarantines the primary; the batch fails, the
  // direct retry sees the quarantine too, and the two failures trip the
  // breaker. The job still completes — degraded through the selector.
  auto F1 = Submit(0);
  Svc.drainNow();
  auto R1 = F1.get();
  ASSERT_TRUE(R1.ok()) << R1.status().toString();
  EXPECT_TRUE(R1->Degraded);
  EXPECT_EQ(Svc.getStats().BreakerTrips, 1u);
  HealthReport H1 = Svc.getHealth();
  ASSERT_EQ(H1.Shards.front().Lanes.size(), 1u);
  EXPECT_EQ(H1.Shards.front().Lanes.front().State, BreakerState::Open);

  // Attempt 2 (inside the cooldown): the open breaker fast-fails the
  // primary without touching it; the job degrades immediately.
  auto F2 = Submit(1);
  Svc.drainNow();
  auto R2 = F2.get();
  ASSERT_TRUE(R2.ok()) << R2.status().toString();
  EXPECT_TRUE(R2->Degraded);
  EXPECT_GE(Svc.getStats().BreakerFastFails, 1u);

  // Attempt 3 (after the cooldown, storm exhausted): the half-open probe
  // un-quarantines the primary, the batch succeeds, and the breaker
  // closes again.
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  auto F3 = Submit(2);
  Svc.drainNow();
  auto R3 = F3.get();
  ASSERT_TRUE(R3.ok()) << R3.status().toString();
  EXPECT_FALSE(R3->Degraded);
  EXPECT_TRUE(R3->Coalesced); // Served by the recovered primary.
  ServiceStats St = Svc.getStats();
  EXPECT_EQ(St.BreakerRecoveries, 1u);
  EXPECT_EQ(St.ChaosInjected, 2u);
  HealthReport H3 = Svc.getHealth();
  EXPECT_EQ(H3.Shards.front().Lanes.front().State, BreakerState::Closed);
  EXPECT_FALSE(H3.Shards.front().Lanes.front().BatchQuarantined);
}

// The deadline/batch race: alive at dequeue, dead by launch. The injected
// queue delay opens exactly that window; the pre-launch re-check must
// expire the job instead of letting it ride the launch.
TEST(DeadlineRace, ExpiryBetweenDequeueAndLaunchNeverRidesTheBatch) {
  ServiceOptions SO;
  SO.StartWorkers = false;
  SO.Chaos.Kind = ChaosKind::QueueDelay;
  SO.Chaos.Period = 1;
  SO.Chaos.DelaySeconds = 0.3;
  ReductionService Svc(SO);

  // Warm the lane first (no deadline — it just eats the first stall), so
  // the deadline job's budget is spent in the injected delay, not in lane
  // setup.
  auto Warm = Svc.submit(makeJob(ReduceOp::Add, ir::ScalarType::F32, 0, 64));
  Svc.drainNow();
  ASSERT_TRUE(Warm.get().ok());
  ServiceStats Before = Svc.getStats();
  ASSERT_EQ(Before.Expired, 0u);

  JobSpec Job = makeJob(ReduceOp::Add, ir::ScalarType::F32, 1, 64);
  Job.DeadlineSeconds = engine::steadySeconds() + 0.15; // Outlives the
                                                        // dequeue check,
                                                        // not the stall.
  auto Fut = Svc.submit(std::move(Job));
  Svc.drainNow();
  auto Out = Fut.get();
  ASSERT_FALSE(Out.ok());
  EXPECT_EQ(Out.code(), StatusCode::DeadlineExceeded);

  ServiceStats St = Svc.getStats();
  EXPECT_EQ(St.Expired, 1u);
  // The expired job must not have launched: batch/launch counters are
  // unchanged from the warm-up.
  EXPECT_EQ(St.Batches, Before.Batches);
  EXPECT_EQ(St.CoalescedJobs, Before.CoalescedJobs);
  EXPECT_EQ(St.DirectJobs, Before.DirectJobs);
  EXPECT_EQ(St.Completed, Before.Completed);
}

} // namespace
