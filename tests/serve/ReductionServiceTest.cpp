//===- ReductionServiceTest.cpp - Serving-layer acceptance tests ------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// The serving-layer acceptance suite:
//  - coalesced (batched) results are bit-identical to running each job
//    alone on the same engine with the same variant, across the
//    op x dtype matrix;
//  - a full admission queue refuses with StatusCode::Overloaded and a
//    stopping service with StatusCode::Unavailable, each without invoking
//    the completion;
//  - a quarantined batch variant degrades jobs through the failover chain
//    instead of failing them;
//  - stop() drains every queued job before the workers exit.
//
//===----------------------------------------------------------------------===//

#include "serve/ReductionService.h"

#include "engine/ExecutionEngine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

using namespace tangram;
using namespace tangram::serve;

using support::StatusCode;

namespace {

/// Deterministic payload for job \p J: small signed values with a distinct
/// extremum per job so Min/Max/ArgMax answers differ across jobs.
JobSpec makeJob(ReduceOp Op, ir::ScalarType Elem, size_t J, size_t N) {
  JobSpec Job;
  Job.Op = Op;
  Job.Elem = Elem;
  for (size_t I = 0; I != N; ++I) {
    long long V = static_cast<long long>((I * 7 + J * 13) % 101) - 50;
    if (I == (J * 3) % N)
      V = 60 + static_cast<long long>(J); // Unique extremum, unique index.
    if (ir::isFloatType(Elem))
      Job.FloatData.push_back(static_cast<double>(V) * 0.25);
    else
      Job.IntData.push_back(V);
  }
  return Job;
}

/// Runs \p Spec alone on the lane's engine with the lane's batch variant —
/// the reference a coalesced result must match bit-for-bit.
engine::ReduceResult runAlone(ReductionService &Svc, const JobSpec &Spec) {
  engine::ExecutionEngine *E =
      Svc.laneEngine(Spec.Gen, Spec.Op, Spec.Elem);
  const synth::VariantDescriptor *Desc =
      Svc.laneBatchDescriptor(Spec.Gen, Spec.Op, Spec.Elem);
  EXPECT_NE(E, nullptr);
  EXPECT_NE(Desc, nullptr);
  sim::Device &Dev = E->getDevice();
  size_t Mark = Dev.mark();
  sim::BufferId In = Dev.alloc(Spec.Elem, std::max<size_t>(1, Spec.size()));
  if (ir::isFloatType(Spec.Elem)) {
    std::vector<float> Host;
    for (double V : Spec.FloatData)
      Host.push_back(static_cast<float>(V));
    Dev.writeFloats(In, Host);
  } else {
    std::vector<int> Host;
    for (long long V : Spec.IntData)
      Host.push_back(static_cast<int>(V));
    Dev.writeInts(In, Host);
  }
  engine::ReduceRequest Req;
  Req.Desc = *Desc;
  Req.In = In;
  Req.N = Spec.size();
  auto Out = E->run(Req);
  Dev.release(Mark);
  EXPECT_TRUE(Out.ok()) << Out.status().toString();
  return Out.ok() ? *Out : engine::ReduceResult{};
}

struct MatrixPoint {
  ReduceOp Op;
  ir::ScalarType Elem;
};

std::string pointName(const MatrixPoint &P) {
  return std::string(getReduceOpSpelling(P.Op)) + "_" +
         reduce::getScalarTypeSpelling(P.Elem);
}

class BatchBitIdentity : public ::testing::TestWithParam<MatrixPoint> {};

// Batched answers must be indistinguishable from lone runs: same kernel,
// same value bits, same winning index. The padding lanes, the segmented
// arena, and the host-side epilogue must all be invisible.
TEST_P(BatchBitIdentity, CoalescedMatchesPerJobRun) {
  const MatrixPoint P = GetParam();
  ServiceOptions SO;
  SO.StartWorkers = false; // Deterministic: we pump the queue ourselves.
  ReductionService Svc(SO);

  // Mixed sizes below one tile, including the empty job (identity) and a
  // single-element one.
  const size_t Sizes[] = {193, 256, 1, 64, 0, 100, 256, 31};
  std::vector<JobSpec> Specs;
  std::vector<std::future<support::Expected<JobResult>>> Futures;
  for (size_t J = 0; J != std::size(Sizes); ++J) {
    JobSpec Job = makeJob(P.Op, P.Elem, J, Sizes[J]);
    Specs.push_back(Job);
    Futures.push_back(Svc.submit(std::move(Job)));
  }
  Svc.drainNow();

  for (size_t J = 0; J != Specs.size(); ++J) {
    auto Out = Futures[J].get();
    ASSERT_TRUE(Out.ok()) << pointName(P) << " job " << J << ": "
                          << Out.status().toString();
    EXPECT_TRUE(Out->Coalesced) << pointName(P) << " job " << J;
    EXPECT_FALSE(Out->Degraded);
    engine::ReduceResult Ref = runAlone(Svc, Specs[J]);
    // Bitwise equality, not EXPECT_NEAR: the segmented launch must fold
    // in the same order with the same rounding as the lone launch.
    EXPECT_EQ(Out->FloatValue, Ref.FloatValue)
        << pointName(P) << " job " << J;
    EXPECT_EQ(Out->IntValue, Ref.IntValue) << pointName(P) << " job " << J;
    if (isArgReduce(P.Op)) {
      EXPECT_EQ(Out->IndexValue, Ref.IndexValue)
          << pointName(P) << " job " << J;
    }
  }

  ServiceStats St = Svc.getStats();
  EXPECT_EQ(St.CoalescedJobs, std::size(Sizes));
  EXPECT_EQ(St.DirectJobs, 0u);
  EXPECT_GE(St.Batches, 1u);
  EXPECT_EQ(St.Failed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    OpDtypeMatrix, BatchBitIdentity,
    ::testing::Values(MatrixPoint{ReduceOp::Add, ir::ScalarType::F32},
                      MatrixPoint{ReduceOp::Add, ir::ScalarType::I32},
                      MatrixPoint{ReduceOp::Add, ir::ScalarType::I64},
                      MatrixPoint{ReduceOp::Min, ir::ScalarType::F32},
                      MatrixPoint{ReduceOp::Min, ir::ScalarType::I32},
                      MatrixPoint{ReduceOp::Min, ir::ScalarType::I64},
                      MatrixPoint{ReduceOp::Max, ir::ScalarType::F32},
                      MatrixPoint{ReduceOp::Max, ir::ScalarType::I32},
                      MatrixPoint{ReduceOp::Max, ir::ScalarType::I64},
                      MatrixPoint{ReduceOp::ArgMax, ir::ScalarType::F32},
                      MatrixPoint{ReduceOp::ArgMax, ir::ScalarType::I32},
                      MatrixPoint{ReduceOp::ArgMax, ir::ScalarType::I64}),
    [](const ::testing::TestParamInfo<MatrixPoint> &I) {
      return pointName(I.param);
    });

// A job bigger than one tile cannot ride a segmented launch; it must fall
// through to the direct path and still answer correctly.
TEST(Batching, OversizedJobsGoDirect) {
  ServiceOptions SO;
  SO.StartWorkers = false;
  SO.BatchBlockSize = 128;
  SO.BatchCoarsen = 1; // Tile = 128 elements.
  ReductionService Svc(SO);
  auto Fut = Svc.submit(makeJob(ReduceOp::Add, ir::ScalarType::F32, 0, 4096));
  Svc.drainNow();
  auto Out = Fut.get();
  ASSERT_TRUE(Out.ok()) << Out.status().toString();
  EXPECT_FALSE(Out->Coalesced);
  double Want = 0;
  for (double V : makeJob(ReduceOp::Add, ir::ScalarType::F32, 0, 4096)
                      .FloatData)
    Want += V;
  EXPECT_NEAR(Out->FloatValue, Want, std::abs(Want) * 1e-4 + 1e-2);
  EXPECT_EQ(Svc.getStats().DirectJobs, 1u);
}

TEST(Backpressure, FullQueueRefusesWithOverloaded) {
  ServiceOptions SO;
  SO.StartWorkers = false; // Nothing drains: the queue genuinely fills.
  SO.QueueDepth = 2;
  ReductionService Svc(SO);

  std::atomic<unsigned> Completions{0};
  auto Done = [&](support::Expected<JobResult>) { ++Completions; };
  EXPECT_TRUE(
      Svc.submit(makeJob(ReduceOp::Add, ir::ScalarType::F32, 0, 16), Done)
          .ok());
  EXPECT_TRUE(
      Svc.submit(makeJob(ReduceOp::Add, ir::ScalarType::F32, 1, 16), Done)
          .ok());
  support::Status Third =
      Svc.submit(makeJob(ReduceOp::Add, ir::ScalarType::F32, 2, 16), Done);
  ASSERT_FALSE(Third.ok());
  EXPECT_EQ(Third.Code, StatusCode::Overloaded);
  // A refused submit must never invoke the completion.
  EXPECT_EQ(Completions.load(), 0u);

  Svc.drainNow(); // The two admitted jobs still complete.
  EXPECT_EQ(Completions.load(), 2u);
  ServiceStats St = Svc.getStats();
  EXPECT_EQ(St.rejected(), 1u);
  EXPECT_EQ(St.RejectedOverloaded, 1u);
  EXPECT_EQ(St.RejectedUnavailable, 0u);
  EXPECT_EQ(St.Completed, 2u);
}

TEST(Backpressure, RefusedFutureCarriesTheStatus) {
  ServiceOptions SO;
  SO.StartWorkers = false;
  SO.QueueDepth = 1;
  ReductionService Svc(SO);
  auto First = Svc.submit(makeJob(ReduceOp::Add, ir::ScalarType::F32, 0, 8));
  auto Second =
      Svc.submit(makeJob(ReduceOp::Add, ir::ScalarType::F32, 1, 8));
  auto Out = Second.get(); // Resolves immediately: admission failed.
  ASSERT_FALSE(Out.ok());
  EXPECT_EQ(Out.code(), StatusCode::Overloaded);
  Svc.drainNow();
  EXPECT_TRUE(First.get().ok());
}

TEST(Routing, UnknownGenerationIsInvalidArgument) {
  ServiceOptions SO;
  SO.StartWorkers = false; // Pascal-only service.
  ReductionService Svc(SO);
  JobSpec Job = makeJob(ReduceOp::Add, ir::ScalarType::F32, 0, 8);
  Job.Gen = sim::ArchGeneration::Kepler;
  auto Out = Svc.submit(std::move(Job)).get();
  ASSERT_FALSE(Out.ok());
  EXPECT_EQ(Out.code(), StatusCode::InvalidArgument);
}

TEST(Deadlines, ExpiredWhileQueuedIsDeadlineExceeded) {
  ServiceOptions SO;
  SO.StartWorkers = false;
  ReductionService Svc(SO);
  JobSpec Job = makeJob(ReduceOp::Add, ir::ScalarType::F32, 0, 8);
  Job.DeadlineSeconds = engine::steadySeconds() - 1.0; // Already past.
  auto Fut = Svc.submit(std::move(Job));
  Svc.drainNow();
  auto Out = Fut.get();
  ASSERT_FALSE(Out.ok());
  EXPECT_EQ(Out.code(), StatusCode::DeadlineExceeded);
  EXPECT_EQ(Svc.getStats().Expired, 1u);
}

// A quarantined batch variant must cost availability nothing: the batch
// demotes, the direct path skips its quarantined primary, and the
// DynamicSelector chain answers — flagged Degraded so operators can see
// the shard is limping.
TEST(Failover, QuarantinedBatchVariantDegradesInsteadOfFailing) {
  ServiceOptions SO;
  SO.StartWorkers = false;
  ReductionService Svc(SO);

  // Force lane creation, then quarantine its batch variant — as a fault
  // campaign or a trapped launch would mid-stream.
  engine::ExecutionEngine *E = Svc.laneEngine(
      sim::ArchGeneration::Pascal, ReduceOp::Add, ir::ScalarType::F32);
  const synth::VariantDescriptor *Desc = Svc.laneBatchDescriptor(
      sim::ArchGeneration::Pascal, ReduceOp::Add, ir::ScalarType::F32);
  ASSERT_NE(E, nullptr);
  ASSERT_NE(Desc, nullptr);
  E->quarantineVariant(*Desc,
                       support::Status(StatusCode::DeadlineExceeded,
                                       "injected: variant livelocked"));

  const size_t Jobs = 6;
  std::vector<std::future<support::Expected<JobResult>>> Futures;
  std::vector<double> Want;
  for (size_t J = 0; J != Jobs; ++J) {
    JobSpec Job = makeJob(ReduceOp::Add, ir::ScalarType::F32, J, 64);
    double W = 0;
    for (double V : Job.FloatData)
      W += V;
    Want.push_back(W);
    Futures.push_back(Svc.submit(std::move(Job)));
  }
  Svc.drainNow();

  for (size_t J = 0; J != Jobs; ++J) {
    auto Out = Futures[J].get();
    ASSERT_TRUE(Out.ok()) << "job " << J << ": "
                          << Out.status().toString();
    EXPECT_TRUE(Out->Degraded) << "job " << J;
    EXPECT_FALSE(Out->Coalesced) << "job " << J;
    EXPECT_NEAR(Out->FloatValue, Want[J], std::abs(Want[J]) * 1e-4 + 1e-2);
  }
  ServiceStats St = Svc.getStats();
  EXPECT_EQ(St.Failed, 0u);
  EXPECT_GE(St.DegradedBatches, 1u);
  EXPECT_EQ(St.DegradedJobs, Jobs);
  EXPECT_EQ(St.CoalescedJobs, 0u);
}

TEST(Shutdown, StopDrainsQueuedJobsBeforeExiting) {
  ServiceOptions SO; // Worker threads on: the real serving configuration.
  std::vector<std::future<support::Expected<JobResult>>> Futures;
  ReductionService Svc(SO);
  const size_t Jobs = 32;
  for (size_t J = 0; J != Jobs; ++J)
    Futures.push_back(
        Svc.submit(makeJob(ReduceOp::Add, ir::ScalarType::I32, J, 128)));
  // Stop immediately: most jobs are still queued. Every accepted job must
  // still resolve with a result, not be dropped.
  Svc.stop();
  unsigned Completed = 0;
  for (auto &Fut : Futures) {
    auto Out = Fut.get();
    EXPECT_TRUE(Out.ok()) << Out.status().toString();
    Completed += Out.ok() ? 1 : 0;
  }
  EXPECT_EQ(Completed, Jobs);
  EXPECT_EQ(Svc.getStats().Completed, Jobs);

  // After stop, admission refuses with Unavailable and never completes.
  auto Late = Svc.submit(makeJob(ReduceOp::Add, ir::ScalarType::I32, 0, 8));
  auto Out = Late.get();
  ASSERT_FALSE(Out.ok());
  EXPECT_EQ(Out.code(), StatusCode::Unavailable);
}

TEST(Shutdown, StopIsIdempotentAndDestructorSafe) {
  ServiceOptions SO;
  ReductionService Svc(SO);
  auto Fut = Svc.submit(makeJob(ReduceOp::Max, ir::ScalarType::F32, 0, 32));
  Svc.stop();
  Svc.stop();
  EXPECT_TRUE(Fut.get().ok());
} // Destructor runs stop() a third time.

// The serving path honors Coalesce = false: every job launches alone.
TEST(Options, CoalesceOffServesEveryJobDirect) {
  ServiceOptions SO;
  SO.StartWorkers = false;
  SO.Coalesce = false;
  ReductionService Svc(SO);
  std::vector<std::future<support::Expected<JobResult>>> Futures;
  for (size_t J = 0; J != 4; ++J)
    Futures.push_back(
        Svc.submit(makeJob(ReduceOp::Min, ir::ScalarType::I64, J, 100)));
  Svc.drainNow();
  for (auto &Fut : Futures) {
    auto Out = Fut.get();
    ASSERT_TRUE(Out.ok()) << Out.status().toString();
    EXPECT_FALSE(Out->Coalesced);
  }
  ServiceStats St = Svc.getStats();
  EXPECT_EQ(St.Batches, 0u);
  EXPECT_EQ(St.DirectJobs, 4u);
}

} // namespace
