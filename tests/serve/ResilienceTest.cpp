//===- ResilienceTest.cpp - Resilience building-block tests ----------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// Unit-level coverage of the resilience layer's building blocks:
//  - ChaosInjector firing schedules are deterministic, seam-scoped, and
//    bounded by MaxFires;
//  - CircuitBreaker walks the full Closed -> Open -> HalfOpen -> Closed
//    lifecycle under injected time, re-trips on probe failure, and never
//    trips when disabled;
//  - percentileSorted survives the zero-completed-jobs case;
//  - ResilientClient absorbs Overloaded refusals with retries, treats
//    Unavailable as terminal, never sleeps a retry past the job deadline,
//    gives up cleanly when attempts are exhausted, and hedges a stalled
//    submission;
//  - getHealth() reports per-lane breaker state and the stats split
//    distinguishes Overloaded from Unavailable refusals.
//
//===----------------------------------------------------------------------===//

#include "serve/ResilientClient.h"

#include "engine/ExecutionEngine.h"

#include <gtest/gtest.h>

#include <string>

using namespace tangram;
using namespace tangram::serve;

using support::StatusCode;

namespace {

JobSpec smallAddJob() {
  JobSpec Job;
  Job.Op = ReduceOp::Add;
  Job.Elem = ir::ScalarType::F32;
  Job.FloatData = {1, 2, 3}; // Exact in any fold order: sum == 6.0.
  return Job;
}

// --- ChaosInjector -------------------------------------------------------

TEST(ChaosSchedule, DeterministicAcrossInjectors) {
  ChaosPlan P;
  P.Kind = ChaosKind::SpuriousReject;
  P.Seed = 42;
  P.Period = 3;
  ChaosInjector A(P), B(P);
  unsigned Fired = 0;
  for (unsigned I = 0; I != 64; ++I) {
    bool FA = A.fires(ChaosKind::SpuriousReject);
    EXPECT_EQ(FA, B.fires(ChaosKind::SpuriousReject)) << "event " << I;
    Fired += FA ? 1 : 0;
  }
  EXPECT_EQ(A.getEventCount(), 64u);
  EXPECT_EQ(A.getFireCount(), Fired);
  // Period 3 fires on roughly a third of events — never none, never all.
  EXPECT_GT(Fired, 0u);
  EXPECT_LT(Fired, 64u);
}

TEST(ChaosSchedule, OtherSeamsNeverFire) {
  ChaosPlan P;
  P.Kind = ChaosKind::QueueDelay;
  P.Period = 1;
  ChaosInjector I(P);
  EXPECT_FALSE(I.fires(ChaosKind::CompileFail));
  EXPECT_FALSE(I.fires(ChaosKind::SlowWorker));
  EXPECT_TRUE(I.fires(ChaosKind::QueueDelay)); // Period 1: every event.
}

TEST(ChaosSchedule, MaxFiresBoundsTheStorm) {
  ChaosPlan P;
  P.Kind = ChaosKind::QuarantineStorm;
  P.Period = 1;
  P.MaxFires = 5;
  ChaosInjector I(P);
  unsigned Fired = 0;
  for (unsigned E = 0; E != 32; ++E)
    Fired += I.fires(ChaosKind::QuarantineStorm) ? 1 : 0;
  EXPECT_EQ(Fired, 5u);
  EXPECT_EQ(I.getFireCount(), 5u);
  EXPECT_EQ(I.getEventCount(), 32u); // Post-storm events still counted.
}

TEST(ChaosNames, ParseRoundTrip) {
  unsigned Count = 0;
  const ChaosKind *Kinds = getAllChaosKinds(Count);
  ASSERT_EQ(Count, 5u);
  for (unsigned I = 0; I != Count; ++I) {
    ChaosKind K = ChaosKind::None;
    EXPECT_TRUE(parseChaosKind(getChaosKindName(Kinds[I]), K));
    EXPECT_EQ(K, Kinds[I]);
  }
  ChaosKind K = ChaosKind::None;
  EXPECT_TRUE(parseChaosKind("none", K));
  EXPECT_EQ(K, ChaosKind::None);
  EXPECT_FALSE(parseChaosKind("meteor-strike", K));
}

// --- CircuitBreaker ------------------------------------------------------

CircuitBreakerOptions tinyBreaker() {
  CircuitBreakerOptions BO;
  BO.WindowSize = 4;
  BO.MinSamples = 2;
  BO.FailureRatio = 0.5;
  BO.OpenSeconds = 1.0;
  BO.ProbeSuccesses = 2;
  return BO;
}

TEST(Breaker, TripFastFailProbeRecover) {
  CircuitBreaker B(tinyBreaker());
  EXPECT_EQ(B.getState(), BreakerState::Closed);
  EXPECT_EQ(B.decide(0.0), BreakerDecision::Allow);
  B.record(false, 0.0); // One failure: below MinSamples, stays Closed.
  EXPECT_EQ(B.getState(), BreakerState::Closed);
  B.record(false, 0.1); // Two of two failed: trip.
  EXPECT_EQ(B.getState(), BreakerState::Open);
  EXPECT_EQ(B.getCounters().Trips, 1u);

  // Open: fast-fail until the cooldown elapses.
  EXPECT_EQ(B.decide(0.5), BreakerDecision::FastFail);
  EXPECT_EQ(B.getCounters().FastFails, 1u);

  // Cooldown over: the transitioning call is the first probe, and only
  // one probe is in flight at a time.
  EXPECT_EQ(B.decide(1.5), BreakerDecision::Probe);
  EXPECT_EQ(B.getState(), BreakerState::HalfOpen);
  EXPECT_EQ(B.decide(1.6), BreakerDecision::FastFail);
  B.record(true, 1.7); // Probe 1 of 2 succeeded: still HalfOpen.
  EXPECT_EQ(B.getState(), BreakerState::HalfOpen);
  EXPECT_EQ(B.decide(1.8), BreakerDecision::Probe);
  B.record(true, 1.9); // Probe 2 of 2: recovered.
  EXPECT_EQ(B.getState(), BreakerState::Closed);
  EXPECT_EQ(B.getCounters().Recoveries, 1u);
  EXPECT_EQ(B.getCounters().Probes, 2u);
  EXPECT_EQ(B.getFailureRatio(), 0.0); // Recovery resets the window.
}

TEST(Breaker, ProbeFailureReTrips) {
  CircuitBreaker B(tinyBreaker());
  B.record(false, 0.0);
  B.record(false, 0.0);
  ASSERT_EQ(B.getState(), BreakerState::Open);
  ASSERT_EQ(B.decide(1.5), BreakerDecision::Probe);
  B.record(false, 1.6); // The probe failed: back to Open, cooldown anew.
  EXPECT_EQ(B.getState(), BreakerState::Open);
  EXPECT_EQ(B.getCounters().Trips, 2u);
  EXPECT_EQ(B.decide(2.0), BreakerDecision::FastFail); // 1.6 + 1.0 > 2.0.
  EXPECT_EQ(B.decide(2.7), BreakerDecision::Probe);
}

TEST(Breaker, DisabledNeverTrips) {
  CircuitBreakerOptions BO = tinyBreaker();
  BO.Enabled = false;
  CircuitBreaker B(BO);
  for (unsigned I = 0; I != 16; ++I) {
    EXPECT_EQ(B.decide(static_cast<double>(I)), BreakerDecision::Allow);
    B.record(false, static_cast<double>(I));
  }
  EXPECT_EQ(B.getState(), BreakerState::Closed);
  EXPECT_EQ(B.getCounters().Trips, 0u);
}

// --- percentileSorted ----------------------------------------------------

TEST(Percentile, EmptySampleIsZeroNotUB) {
  std::vector<double> Empty;
  EXPECT_EQ(percentileSorted(Empty, 0.50), 0.0);
  EXPECT_EQ(percentileSorted(Empty, 0.99), 0.0);
}

TEST(Percentile, NearestRankAndClamping) {
  std::vector<double> S = {1, 2, 3, 4};
  EXPECT_EQ(percentileSorted(S, 0.0), 1.0);
  EXPECT_EQ(percentileSorted(S, 1.0), 4.0);
  EXPECT_EQ(percentileSorted(S, 0.5), 2.0);
  EXPECT_EQ(percentileSorted(S, -1.0), 1.0); // Clamped.
  EXPECT_EQ(percentileSorted(S, 2.0), 4.0);  // Clamped.
}

// --- ResilientClient -----------------------------------------------------

TEST(Client, RetriesAbsorbSpuriousRejects) {
  ServiceOptions SO;
  SO.Chaos.Kind = ChaosKind::SpuriousReject;
  SO.Chaos.Seed = 7;
  SO.Chaos.Period = 2;
  SO.Chaos.MaxFires = 6; // Bounded storm: every job eventually lands.
  ReductionService Svc(SO);
  ResilientClientOptions CO;
  CO.MaxAttempts = 8;
  CO.BaseBackoffSeconds = 1e-4;
  CO.MaxBackoffSeconds = 1e-3;
  ResilientClient Client(Svc, CO);

  for (unsigned J = 0; J != 8; ++J) {
    auto Out = Client.run(smallAddJob());
    ASSERT_TRUE(Out.ok()) << "job " << J << ": "
                          << Out.status().toString();
    EXPECT_EQ(Out->FloatValue, 6.0);
  }
  ClientStats CS = Client.getStats();
  EXPECT_EQ(CS.Succeeded, 8u);
  EXPECT_EQ(CS.Failed, 0u);
  EXPECT_GT(CS.Retries, 0u); // The storm really refused some admissions.
  ServiceStats St = Svc.getStats();
  EXPECT_EQ(St.RejectedOverloaded, CS.Retries);
  EXPECT_EQ(St.RejectedUnavailable, 0u);
  EXPECT_EQ(St.ChaosInjected, CS.Retries);
}

TEST(Client, UnavailableIsTerminal) {
  ReductionService Svc{ServiceOptions()};
  Svc.stop();
  ResilientClient Client(Svc);
  auto Out = Client.run(smallAddJob());
  ASSERT_FALSE(Out.ok());
  EXPECT_EQ(Out.code(), StatusCode::Unavailable);
  ClientStats CS = Client.getStats();
  EXPECT_EQ(CS.Retries, 0u); // Shutdown is not worth retrying.
  EXPECT_EQ(CS.Failed, 1u);
  // The split keeps shutdown refusals out of the backpressure counter.
  ServiceStats St = Svc.getStats();
  EXPECT_EQ(St.RejectedUnavailable, 1u);
  EXPECT_EQ(St.RejectedOverloaded, 0u);
  EXPECT_EQ(St.rejected(), 1u);
}

TEST(Client, DeadlineStopsRetries) {
  ServiceOptions SO;
  SO.Chaos.Kind = ChaosKind::SpuriousReject;
  SO.Chaos.Period = 1; // Every admission refused: only retries remain.
  ReductionService Svc(SO);
  ResilientClientOptions CO;
  CO.MaxAttempts = 10;
  CO.BaseBackoffSeconds = 0.05;
  CO.MaxBackoffSeconds = 0.05; // Deterministic backoff: jitter range is 0.
  ResilientClient Client(Svc, CO);

  JobSpec Job = smallAddJob();
  Job.DeadlineSeconds = engine::steadySeconds() + 0.12;
  auto Out = Client.run(std::move(Job));
  ASSERT_FALSE(Out.ok());
  EXPECT_EQ(Out.code(), StatusCode::DeadlineExceeded);
  ClientStats CS = Client.getStats();
  EXPECT_EQ(CS.DeadlineStops, 1u);
  // The budget allowed some sleeping but nowhere near MaxAttempts worth.
  EXPECT_LT(CS.Retries, 4u);
}

TEST(Client, ExhaustedRetriesReportOverloaded) {
  ServiceOptions SO;
  SO.Chaos.Kind = ChaosKind::SpuriousReject;
  SO.Chaos.Period = 1;
  ReductionService Svc(SO);
  ResilientClientOptions CO;
  CO.MaxAttempts = 3;
  CO.BaseBackoffSeconds = 1e-4;
  CO.MaxBackoffSeconds = 1e-3;
  ResilientClient Client(Svc, CO);
  auto Out = Client.run(smallAddJob());
  ASSERT_FALSE(Out.ok());
  EXPECT_EQ(Out.code(), StatusCode::Overloaded);
  ClientStats CS = Client.getStats();
  EXPECT_EQ(CS.RetriesExhausted, 1u);
  EXPECT_EQ(CS.Retries, 2u); // MaxAttempts - 1 re-submissions.
  EXPECT_GT(CS.BackoffSecondsTotal, 0.0);
}

TEST(Client, HedgeRacesAStalledWorker) {
  ServiceOptions SO;
  SO.Chaos.Kind = ChaosKind::SlowWorker;
  SO.Chaos.Period = 1;
  SO.Chaos.MaxFires = 1;
  SO.Chaos.DelaySeconds = 0.15;
  ReductionService Svc(SO);
  ResilientClientOptions CO;
  CO.HedgeAfterSeconds = 0.01; // Far below the injected stall.
  ResilientClient Client(Svc, CO);
  auto Out = Client.run(smallAddJob());
  ASSERT_TRUE(Out.ok()) << Out.status().toString();
  EXPECT_EQ(Out->FloatValue, 6.0);
  EXPECT_EQ(Client.getStats().Hedges, 1u);
}

// --- Health reporting ----------------------------------------------------

TEST(Health, ReportsLaneBreakerStateAndTotals) {
  ServiceOptions SO;
  SO.StartWorkers = false;
  ReductionService Svc(SO);
  std::vector<std::future<support::Expected<JobResult>>> Futures;
  for (unsigned J = 0; J != 3; ++J)
    Futures.push_back(Svc.submit(smallAddJob()));
  Svc.drainNow();
  for (auto &F : Futures)
    EXPECT_TRUE(F.get().ok());

  HealthReport R = Svc.getHealth();
  ASSERT_EQ(R.Shards.size(), 1u);
  const ShardHealth &S = R.Shards.front();
  EXPECT_FALSE(S.ArchName.empty());
  EXPECT_EQ(S.QueueDepth, 0u);
  EXPECT_EQ(S.Stats.Completed, 3u);
  ASSERT_EQ(S.Lanes.size(), 1u);
  EXPECT_EQ(S.Lanes.front().State, BreakerState::Closed);
  EXPECT_FALSE(S.Lanes.front().BatchQuarantined);
  EXPECT_EQ(S.degradedRatio(), 0.0);
  EXPECT_EQ(R.Totals.Completed, 3u);

  std::string Text = R.renderText();
  EXPECT_NE(Text.find(S.ArchName), std::string::npos);
  EXPECT_NE(Text.find("lane"), std::string::npos);
  EXPECT_NE(Text.find("closed"), std::string::npos);
}

} // namespace
