//===- SupportTest.cpp - Support library unit tests --------------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/ReduceOp.h"
#include "support/SourceManager.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace tangram;

namespace {

//===----------------------------------------------------------------------===//
// SourceManager
//===----------------------------------------------------------------------===//

TEST(SourceManager, LineColumnDecoding) {
  SourceManager SM("f.tgr", "abc\ndef\n\nxyz");
  EXPECT_EQ(SM.getNumLines(), 4u);
  LineColumn LC = SM.getLineColumn(SourceLoc(0));
  EXPECT_EQ(LC.Line, 1u);
  EXPECT_EQ(LC.Column, 1u);
  LC = SM.getLineColumn(SourceLoc(4)); // 'd'
  EXPECT_EQ(LC.Line, 2u);
  EXPECT_EQ(LC.Column, 1u);
  LC = SM.getLineColumn(SourceLoc(6)); // 'f'
  EXPECT_EQ(LC.Line, 2u);
  EXPECT_EQ(LC.Column, 3u);
  LC = SM.getLineColumn(SourceLoc(9)); // 'x'
  EXPECT_EQ(LC.Line, 4u);
  EXPECT_EQ(LC.Column, 1u);
}

TEST(SourceManager, LineText) {
  SourceManager SM("f.tgr", "first\nsecond\nthird");
  EXPECT_EQ(SM.getLineText(1), "first");
  EXPECT_EQ(SM.getLineText(2), "second");
  EXPECT_EQ(SM.getLineText(3), "third");
}

TEST(SourceManager, EmptyBuffer) {
  SourceManager SM("f.tgr", "");
  EXPECT_EQ(SM.getNumLines(), 1u);
  EXPECT_EQ(SM.getLineText(1), "");
  LineColumn LC = SM.getLineColumn(SourceLoc(0));
  EXPECT_EQ(LC.Line, 1u);
}

TEST(SourceManager, EndOfBufferLocation) {
  SourceManager SM("f.tgr", "ab");
  LineColumn LC = SM.getLineColumn(SourceLoc(2));
  EXPECT_EQ(LC.Line, 1u);
  EXPECT_EQ(LC.Column, 3u);
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(Diagnostics, RenderWithCaret) {
  SourceManager SM("r.tgr", "int x = ?;");
  DiagnosticEngine Diags(SM);
  Diags.error(SourceLoc(8), "unexpected character");
  ASSERT_TRUE(Diags.hasErrors());
  std::string Out = Diags.renderAll();
  EXPECT_NE(Out.find("r.tgr:1:9: error: unexpected character"),
            std::string::npos);
  EXPECT_NE(Out.find("int x = ?;"), std::string::npos);
  EXPECT_NE(Out.find("        ^"), std::string::npos);
}

TEST(Diagnostics, SeverityCounting) {
  SourceManager SM("r.tgr", "x");
  DiagnosticEngine Diags(SM);
  Diags.warning(SourceLoc(0), "w");
  Diags.note(SourceLoc(0), "n");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error(SourceLoc(0), "e");
  EXPECT_EQ(Diags.getNumErrors(), 1u);
  EXPECT_EQ(Diags.getDiagnostics().size(), 3u);
}

TEST(Diagnostics, InvalidLocationRendersWithoutSnippet) {
  SourceManager SM("r.tgr", "x");
  DiagnosticEngine Diags(SM);
  Diags.error(SourceLoc(), "global problem");
  std::string Out = Diags.renderAll();
  EXPECT_NE(Out.find("global problem"), std::string::npos);
  EXPECT_EQ(Out.find("^"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// StringUtils
//===----------------------------------------------------------------------===//

TEST(StringUtils, Strformat) {
  EXPECT_EQ(strformat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strformat("%.2f", 1.5), "1.50");
}

TEST(StringUtils, JoinAndSplit) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  auto Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[2], "");
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

//===----------------------------------------------------------------------===//
// ReduceOp
//===----------------------------------------------------------------------===//

TEST(ReduceOp, Apply) {
  EXPECT_EQ(applyReduceOp<int>(ReduceOp::Add, 3, 4), 7);
  EXPECT_EQ(applyReduceOp<int>(ReduceOp::Sub, 3, 4), -1);
  EXPECT_EQ(applyReduceOp<int>(ReduceOp::Max, 3, 4), 4);
  EXPECT_EQ(applyReduceOp<int>(ReduceOp::Min, 3, 4), 3);
  EXPECT_DOUBLE_EQ(applyReduceOp<double>(ReduceOp::Add, 0.5, 0.25), 0.75);
}

TEST(ReduceOp, SpellingRoundTrip) {
  // Identities moved to the reduce::OpDef table (see tests/reduce); the
  // support layer owns the spellings and their parser.
  for (ReduceOp Op : {ReduceOp::Add, ReduceOp::Sub, ReduceOp::Max,
                      ReduceOp::Min, ReduceOp::ArgMax, ReduceOp::ArgMin,
                      ReduceOp::Any}) {
    ReduceOp Parsed = ReduceOp::Add;
    ASSERT_TRUE(parseReduceOp(getReduceOpSpelling(Op), Parsed));
    EXPECT_EQ(Parsed, Op);
  }
  ReduceOp Parsed = ReduceOp::Add;
  EXPECT_FALSE(parseReduceOp("bogus", Parsed));
}

TEST(ReduceOp, Names) {
  EXPECT_STREQ(getReduceOpName(ReduceOp::Add), "Add");
  EXPECT_STREQ(getReduceOpName(ReduceOp::Min), "Min");
}

//===----------------------------------------------------------------------===//
// Casting
//===----------------------------------------------------------------------===//

namespace casting_fixture {
struct Base {
  enum class Kind { A, B } K;
  explicit Base(Kind K) : K(K) {}
};
struct A : Base {
  A() : Base(Kind::A) {}
  static bool classof(const Base *B) { return B->K == Kind::A; }
};
struct B : Base {
  B() : Base(Kind::B) {}
  static bool classof(const Base *Bs) { return Bs->K == Kind::B; }
};
} // namespace casting_fixture

TEST(Casting, IsaDynCast) {
  using namespace casting_fixture;
  A AObj;
  Base *P = &AObj;
  EXPECT_TRUE(isa<A>(P));
  EXPECT_FALSE(isa<B>(P));
  EXPECT_TRUE((isa<B, A>(P))); // Multi-alternative form.
  EXPECT_EQ(dyn_cast<A>(P), &AObj);
  EXPECT_EQ(dyn_cast<B>(P), nullptr);
  Base *Null = nullptr;
  EXPECT_FALSE(isa_and_present<A>(Null));
  EXPECT_EQ(dyn_cast_if_present<A>(Null), nullptr);
}

} // namespace
