//===- ThreadPoolTest.cpp - Thread pool exception-safety tests --------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// The block-parallel simulator runs kernel blocks through parallelFor, so a
// throwing body (e.g. a bad_alloc inside a block simulation) must not take
// the pool down or hang the caller: the first exception propagates to the
// parallelFor caller and the pool stays usable.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

using namespace tangram::support;

namespace {

TEST(ThreadPool, BodyExceptionPropagatesToCaller) {
  ThreadPool Pool(4);
  bool Caught = false;
  try {
    Pool.parallelFor(64, [](size_t I) {
      if (I == 13)
        throw std::runtime_error("boom");
    });
  } catch (const std::runtime_error &E) {
    Caught = true;
    EXPECT_STREQ(E.what(), "boom");
  }
  EXPECT_TRUE(Caught);
}

TEST(ThreadPool, ExceptionCancelsRemainingIndices) {
  // Throwing early abandons unclaimed indices: well under N bodies run.
  ThreadPool Pool(2);
  std::atomic<size_t> Ran{0};
  const size_t N = 1 << 20;
  EXPECT_THROW(Pool.parallelFor(N,
                                [&](size_t) {
                                  Ran.fetch_add(1,
                                                std::memory_order_relaxed);
                                  throw std::logic_error("stop");
                                }),
               std::logic_error);
  EXPECT_LT(Ran.load(), N);
}

TEST(ThreadPool, PoolIsReusableAfterException) {
  ThreadPool Pool(4);
  EXPECT_THROW(
      Pool.parallelFor(16, [](size_t) { throw std::runtime_error("once"); }),
      std::runtime_error);

  // A subsequent job must run every index exactly once.
  std::atomic<unsigned> Sum{0};
  Pool.parallelFor(100, [&](size_t I) {
    Sum.fetch_add(static_cast<unsigned>(I) + 1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Sum.load(), 5050u);

  // And a clean job after that must not see a stale exception.
  std::atomic<unsigned> Count{0};
  Pool.parallelFor(8, [&](size_t) {
    Count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Count.load(), 8u);
}

TEST(ThreadPool, SequentialFallbackPropagatesToo) {
  // N == 1 (and zero-worker pools) run inline in the caller; the exception
  // path must behave identically there.
  ThreadPool Pool(1);
  EXPECT_THROW(
      Pool.parallelFor(1, [](size_t) { throw std::runtime_error("inline"); }),
      std::runtime_error);
  std::atomic<unsigned> Count{0};
  Pool.parallelFor(1, [&](size_t) {
    Count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Count.load(), 1u);
}

} // namespace
