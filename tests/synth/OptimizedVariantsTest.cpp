//===- OptimizedVariantsTest.cpp - Optimization differential tests -----------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// Differential property suite: every pruned code version must compute the
// same reduction with every combination of the future-work IR passes
// enabled. This is the guard that keeps the optimizations semantics-
// preserving across the whole synthesized space.
//
//===----------------------------------------------------------------------===//

#include "engine/ExecutionEngine.h"
#include "lang/Parser.h"
#include "sema/Sema.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "synth/KernelSynthesizer.h"
#include "synth/ReductionSpectrum.h"
#include "synth/VariantEnumerator.h"

#include <gtest/gtest.h>

#include <random>

using namespace tangram;
using namespace tangram::synth;

namespace {

struct Compiled {
  std::unique_ptr<SourceManager> SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::unique_ptr<lang::ASTContext> Ctx;
  lang::TranslationUnit TU;
  std::map<const lang::CodeletDecl *, transforms::CodeletTransformInfo>
      Infos;

  Compiled() {
    SM = std::make_unique<SourceManager>("reduction.tgr",
                                         getReductionSource());
    Diags = std::make_unique<DiagnosticEngine>(*SM);
    Ctx = std::make_unique<lang::ASTContext>();
    lang::Parser P(*SM, *Ctx, *Diags);
    TU = P.parseTranslationUnit();
    sema::Sema S(*Ctx, *Diags);
    EXPECT_TRUE(S.analyze(TU)) << Diags->renderAll();
    Infos = transforms::runTransformPipeline(TU);
  }
};

Compiled &fixture() {
  static Compiled C;
  return C;
}

class OptimizedVariants
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(OptimizedVariants, AllPrunedVariantsStayCorrect) {
  auto [Aggregate, Unroll] = GetParam();
  OptimizationFlags Flags;
  Flags.AggregateAtomics = Aggregate;
  Flags.UnrollLoops = Unroll;

  Compiled &C = fixture();
  KernelSynthesizer Synth(C.TU, C.Infos, ReduceOp::Add,
                          ir::ScalarType::F32);
  SearchSpace Space = enumerateVariants();

  const size_t N = 2048 + 9;
  std::mt19937 Rng(77);
  std::uniform_real_distribution<float> Dist(-1.0f, 1.0f);
  std::vector<float> Data(N);
  double Expected = 0;
  for (float &V : Data) {
    V = Dist(Rng);
    Expected += V;
  }

  engine::ExecutionEngine E(sim::getKeplerK40c());
  for (const VariantDescriptor &Base : Space.Pruned) {
    VariantDescriptor V = Base;
    V.BlockSize = 128;
    V.Coarsen = V.BlockDistributes ? 4 : 1;
    auto S = Synth.synthesize(V, Flags);
    ASSERT_TRUE(S.ok()) << V.getName() << ": "
                        << S.status().toString();
    size_t Mark = E.deviceMark();
    sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, N);
    E.getDevice().writeFloats(In, Data);
    auto Out = E.run(engine::ReduceRequest{.In = In, .N = N}, **S);
    E.deviceRelease(Mark);
    ASSERT_TRUE(Out.ok()) << V.getName() << ": "
                          << Out.status().toString();
    EXPECT_NEAR(Out->FloatValue, Expected, std::abs(Expected) * 1e-3 + 1e-2)
        << V.getName() << " aggregate=" << Aggregate
        << " unroll=" << Unroll;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FlagGrid, OptimizedVariants,
    ::testing::Combine(::testing::Bool(), ::testing::Bool()),
    [](const auto &Info) {
      return std::string(std::get<0>(Info.param) ? "agg" : "noagg") +
             (std::get<1>(Info.param) ? "_unroll" : "_rolled");
    });

TEST(OptimizedVariants, UnrollRemovesLoopOpsFromShuffleVariants) {
  Compiled &C = fixture();
  KernelSynthesizer Synth(C.TU, C.Infos, ReduceOp::Add,
                          ir::ScalarType::F32);
  SearchSpace Space = enumerateVariants();
  OptimizationFlags Flags;
  Flags.UnrollLoops = true;

  VariantDescriptor M = *findByFigure6Label(Space, "m");
  auto Rolled = Synth.synthesize(M);
  auto Unrolled = Synth.synthesize(M, Flags);
  ASSERT_TRUE(Rolled.ok() && Unrolled.ok());

  auto CountLoopOps = [](const ir::CompiledKernel &CK) {
    unsigned Count = 0;
    for (const ir::Instr &I : CK.Code)
      Count += I.Op == ir::Opcode::LoopTest;
    return Count;
  };
  // The shuffle tree loops (constant 16..1 bounds) unroll away; the
  // rolled version retains them.
  EXPECT_GT(CountLoopOps((*Rolled)->Compiled), 0u);
  EXPECT_EQ(CountLoopOps((*Unrolled)->Compiled), 0u);
  EXPECT_GT((*Unrolled)->Compiled.Code.size(), (*Rolled)->Compiled.Code.size());
}

TEST(OptimizedVariants, AggregationHelpsVariantNOnKepler) {
  // Version (n)'s all-thread shared atomic is exactly the pattern the
  // Section III-D aggregation targets; Kepler benefits the most.
  Compiled &C = fixture();
  KernelSynthesizer Synth(C.TU, C.Infos, ReduceOp::Add,
                          ir::ScalarType::F32);
  SearchSpace Space = enumerateVariants();
  OptimizationFlags Flags;
  Flags.AggregateAtomics = true;

  VariantDescriptor N = *findByFigure6Label(Space, "n");
  N.BlockSize = 256;
  auto Plain = Synth.synthesize(N);
  auto Agg = Synth.synthesize(N, Flags);
  ASSERT_TRUE(Plain.ok() && Agg.ok());

  const size_t Size = 1 << 16;
  engine::ExecutionEngine E(sim::getKeplerK40c());
  auto TimeOf = [&](const SynthesizedVariant &S) {
    size_t Mark = E.deviceMark();
    sim::VirtualPattern Pattern;
    sim::BufferId In =
        E.getDevice().allocVirtual(ir::ScalarType::F32, Size, Pattern);
    double Seconds =
        E.run(engine::ReduceRequest{.In = In,
                                    .N = Size,
                                    .Mode = sim::ExecMode::Sampled},
              S)
            ->Seconds;
    E.deviceRelease(Mark);
    return Seconds;
  };
  EXPECT_LT(TimeOf(**Agg), TimeOf(**Plain));
}

} // namespace
