//===- SynthesisTest.cpp - Variant enumeration and synthesis tests ----------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// Validates the Section IV-B search space and, crucially, that every
// pruned code version synthesizes, verifies, and computes the correct
// reduction on the simulated GPU across architectures, sizes, block
// sizes, coarsening factors, element types, and operators.
//
//===----------------------------------------------------------------------===//

#include "synth/VariantEnumerator.h"

#include "engine/ExecutionEngine.h"
#include "lang/Parser.h"
#include "sema/Sema.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "synth/KernelSynthesizer.h"
#include "synth/ReductionSpectrum.h"

#include <gtest/gtest.h>

#include <random>

using namespace tangram;
using namespace tangram::synth;

namespace {

//===----------------------------------------------------------------------===//
// Search space (Section IV-B)
//===----------------------------------------------------------------------===//

TEST(VariantEnumerator, OriginalTangramHasTenVersions) {
  SearchSpace Space = enumerateVariants(FeatureSet::original());
  EXPECT_EQ(Space.All.size(), 10u);
  // All ten require the second kernel; none survive pruning.
  EXPECT_TRUE(Space.Pruned.empty());
}

TEST(VariantEnumerator, FullSpaceCategoryCounts) {
  SearchSpace Space = enumerateVariants();
  EXPECT_EQ(Space.countCategory(VariantCategory::Original), 10u);
  EXPECT_EQ(Space.countCategory(VariantCategory::GlobalAtomic), 10u);
  // Our composition algebra (see VariantEnumerator.h) yields 24+24 for
  // the shared-atomic and shuffle stages where the paper reports 38+31;
  // the pruned set below matches the paper exactly.
  EXPECT_EQ(Space.countCategory(VariantCategory::SharedAtomic), 24u);
  EXPECT_EQ(Space.countCategory(VariantCategory::WarpShuffle), 24u);
  EXPECT_EQ(Space.All.size(), 68u);
}

TEST(VariantEnumerator, PrunedSetMatchesPaper) {
  SearchSpace Space = enumerateVariants();
  EXPECT_EQ(Space.Pruned.size(), 30u);
  for (const VariantDescriptor &V : Space.Pruned) {
    EXPECT_EQ(V.GridScheme, GridCombine::GlobalAtomic)
        << V.getName() << ": all surviving versions use atomic "
        << "instructions on global memory";
    EXPECT_NE(V.Coop, CoopKind::SerialThread0);
  }
}

TEST(VariantEnumerator, SixteenFigure6LabelsExist) {
  SearchSpace Space = enumerateVariants();
  unsigned Labeled = 0;
  for (char L = 'a'; L <= 'p'; ++L) {
    const VariantDescriptor *V =
        findByFigure6Label(Space, std::string(1, L));
    EXPECT_NE(V, nullptr) << "missing Fig. 6 version (" << L << ")";
    if (V)
      ++Labeled;
  }
  EXPECT_EQ(Labeled, 16u);
}

TEST(VariantEnumerator, PaperBestEight) {
  SearchSpace Space = enumerateVariants();
  unsigned Best = 0;
  for (const VariantDescriptor &V : Space.Pruned)
    Best += V.isPaperBest();
  EXPECT_EQ(Best, 8u);
  // Spot-check the versions named in Sections IV-C2..4.
  const VariantDescriptor *P = findByFigure6Label(Space, "p");
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->Coop, CoopKind::SharedV2Shuffle);
  EXPECT_FALSE(P->BlockDistributes);
  const VariantDescriptor *N = findByFigure6Label(Space, "n");
  ASSERT_NE(N, nullptr);
  EXPECT_EQ(N->Coop, CoopKind::SharedV1);
  const VariantDescriptor *M = findByFigure6Label(Space, "m");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Coop, CoopKind::TreeShuffle);
  const VariantDescriptor *B = findByFigure6Label(Space, "b");
  ASSERT_NE(B, nullptr);
  EXPECT_TRUE(B->BlockDistributes);
  EXPECT_EQ(B->Coop, CoopKind::TreeShuffle);
}

TEST(VariantEnumerator, NamesAreUnique) {
  SearchSpace Space = enumerateVariants();
  std::set<std::string> Names;
  for (const VariantDescriptor &V : Space.All)
    EXPECT_TRUE(Names.insert(V.getName()).second)
        << "duplicate name " << V.getName();
}

//===----------------------------------------------------------------------===//
// Synthesis + execution
//===----------------------------------------------------------------------===//

struct Compiled {
  std::unique_ptr<SourceManager> SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::unique_ptr<lang::ASTContext> Ctx;
  lang::TranslationUnit TU;
  std::map<const lang::CodeletDecl *, transforms::CodeletTransformInfo>
      Infos;

  Compiled(ir::ScalarType Elem, ReduceOp Op) {
    SM = std::make_unique<SourceManager>("reduction.tgr",
                                         getReductionSource(Elem, Op));
    Diags = std::make_unique<DiagnosticEngine>(*SM);
    Ctx = std::make_unique<lang::ASTContext>();
    lang::Parser P(*SM, *Ctx, *Diags);
    TU = P.parseTranslationUnit();
    sema::Sema S(*Ctx, *Diags);
    EXPECT_TRUE(S.analyze(TU)) << Diags->renderAll();
    Infos = transforms::runTransformPipeline(TU);
  }
};

Compiled &floatAdd() {
  static Compiled C(ir::ScalarType::F32, ReduceOp::Add);
  return C;
}
Compiled &intAdd() {
  static Compiled C(ir::ScalarType::I32, ReduceOp::Add);
  return C;
}

std::vector<float> randomFloats(size_t N, unsigned Seed) {
  std::mt19937 Rng(Seed);
  std::uniform_real_distribution<float> Dist(-4.0f, 4.0f);
  std::vector<float> Data(N);
  for (float &V : Data)
    V = Dist(Rng);
  return Data;
}

TEST(KernelSynthesizer, SecondKernelVariantsSynthesizeTwoStages) {
  // The pre-Section-III-A versions (Listing 1): a partials-store kernel
  // plus a cooperative second stage.
  Compiled &C = floatAdd();
  KernelSynthesizer Synth(C.TU, C.Infos, ReduceOp::Add,
                          ir::ScalarType::F32);
  VariantDescriptor V;
  V.GridScheme = GridCombine::SecondKernel;
  auto S = Synth.synthesize(V);
  ASSERT_TRUE(S.ok()) << S.status().toString();
  ASSERT_NE((*S)->SecondStage, nullptr);
  EXPECT_FALSE((*S)->SecondStage->Desc.usesSecondKernel());
  // The main kernel stores per-block partials instead of atomics.
  bool HasAtomGlobal = false, HasStGlobal = false;
  for (const ir::Instr &I : (*S)->Compiled.Code) {
    HasAtomGlobal |= I.Op == ir::Opcode::AtomGlobal;
    HasStGlobal |= I.Op == ir::Opcode::StGlobal;
  }
  EXPECT_FALSE(HasAtomGlobal);
  EXPECT_TRUE(HasStGlobal);
}

TEST(ReductionRunner, OriginalTenVersionsComputeCorrectSums) {
  Compiled &C = floatAdd();
  KernelSynthesizer Synth(C.TU, C.Infos, ReduceOp::Add,
                          ir::ScalarType::F32);
  SearchSpace Space = enumerateVariants();

  const size_t N = 8192 + 5;
  std::vector<float> Data = randomFloats(N, 99);
  double Expected = 0;
  for (float X : Data)
    Expected += X;

  engine::ExecutionEngine E(sim::getKeplerK40c());
  unsigned Checked = 0;
  for (const VariantDescriptor &Base : Space.All) {
    if (Base.getCategory() != VariantCategory::Original)
      continue;
    VariantDescriptor V = Base;
    V.BlockSize = 128;
    V.Coarsen = V.BlockDistributes ? 4 : 1;
    auto S = Synth.synthesize(V);
    ASSERT_TRUE(S.ok()) << V.getName() << ": "
                       << S.status().toString();
    size_t Mark = E.deviceMark();
    sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, N);
    E.getDevice().writeFloats(In, Data);
    auto Out = E.run(engine::ReduceRequest{.In = In, .N = N}, **S);
    E.deviceRelease(Mark);
    ASSERT_TRUE(Out.ok()) << V.getName() << ": "
                          << Out.status().toString();
    EXPECT_NEAR(Out->FloatValue, Expected, std::abs(Expected) * 1e-4 + 1e-2)
        << V.getName();
    ++Checked;
  }
  EXPECT_EQ(Checked, 10u);
}

TEST(ReductionRunner, PruningJustifiedSecondKernelIsSlower) {
  // Section IV-B prunes the two-kernel versions because they
  // "consistently provide low performance": the extra launch dominates
  // small and medium sizes.
  Compiled &C = floatAdd();
  KernelSynthesizer Synth(C.TU, C.Infos, ReduceOp::Add,
                          ir::ScalarType::F32);
  VariantDescriptor Atomic; // DTA/V
  Atomic.GridScheme = GridCombine::GlobalAtomic;
  VariantDescriptor TwoKernel = Atomic;
  TwoKernel.GridScheme = GridCombine::SecondKernel;

  auto SA = Synth.synthesize(Atomic);
  auto ST = Synth.synthesize(TwoKernel);
  ASSERT_TRUE(SA.ok() && ST.ok());

  engine::ExecutionEngine EA(sim::getMaxwellGTX980());
  engine::ExecutionEngine ET(sim::getMaxwellGTX980());
  for (size_t N : {4096u, 65536u, 1u << 20}) {
    size_t MarkA = EA.deviceMark(), MarkT = ET.deviceMark();
    sim::VirtualPattern Pattern;
    sim::BufferId InA =
        EA.getDevice().allocVirtual(ir::ScalarType::F32, N, Pattern);
    sim::BufferId InT =
        ET.getDevice().allocVirtual(ir::ScalarType::F32, N, Pattern);
    double TA = EA.run(engine::ReduceRequest{.In = InA,
                                             .N = N,
                                             .Mode = sim::ExecMode::Sampled},
                       **SA)
                    ->Seconds;
    double TT = ET.run(engine::ReduceRequest{.In = InT,
                                             .N = N,
                                             .Mode = sim::ExecMode::Sampled},
                       **ST)
                    ->Seconds;
    EA.deviceRelease(MarkA);
    ET.deviceRelease(MarkT);
    // The second launch dominates at small/medium sizes and amortizes
    // (but never pays off) at larger ones.
    double Margin = N <= 65536 ? 1.3 : 1.1;
    EXPECT_GT(TT, TA * Margin) << "N=" << N;
  }
}

TEST(KernelSynthesizer, AllPrunedVariantsSynthesizeAndVerify) {
  Compiled &C = floatAdd();
  KernelSynthesizer Synth(C.TU, C.Infos, ReduceOp::Add,
                          ir::ScalarType::F32);
  SearchSpace Space = enumerateVariants();
  for (const VariantDescriptor &V : Space.Pruned) {
    auto S = Synth.synthesize(V);
    ASSERT_TRUE(S.ok()) << V.getName() << ": "
                       << S.status().toString();
    EXPECT_FALSE((*S)->Compiled.Code.empty());
    // Shuffle variants carry Shfl instructions; shared-atomic variants
    // carry AtomShared; every pruned variant ends in a global atomic.
    bool HasShfl = false, HasAtomShared = false, HasAtomGlobal = false;
    for (const ir::Instr &I : (*S)->Compiled.Code) {
      HasShfl |= I.Op == ir::Opcode::Shfl;
      HasAtomShared |= I.Op == ir::Opcode::AtomShared;
      HasAtomGlobal |= I.Op == ir::Opcode::AtomGlobal;
    }
    EXPECT_EQ(HasShfl, coopUsesShuffle(V.Coop)) << V.getName();
    EXPECT_EQ(HasAtomShared, coopUsesSharedAtomics(V.Coop)) << V.getName();
    EXPECT_TRUE(HasAtomGlobal) << V.getName();
  }
}

TEST(KernelSynthesizer, ShuffleVariantElidesSharedTmp) {
  Compiled &C = floatAdd();
  KernelSynthesizer Synth(C.TU, C.Infos, ReduceOp::Add,
                          ir::ScalarType::F32);
  SearchSpace Space = enumerateVariants();
  auto Tree = Synth.synthesize(*findByFigure6Label(Space, "l"));
  auto Shfl = Synth.synthesize(*findByFigure6Label(Space, "m"));
  ASSERT_TRUE(Tree.ok() && Shfl.ok());
  // (l) allocates tmp[blockDim] + partial[32]; (m) drops tmp entirely —
  // the occupancy benefit Section III-C describes.
  EXPECT_EQ((*Tree)->K->getSharedArrays().size(), 2u);
  EXPECT_EQ((*Shfl)->K->getSharedArrays().size(), 1u);
}

/// Runs every pruned variant functionally and checks the sum.
TEST(ReductionRunner, AllPrunedVariantsComputeCorrectSums) {
  Compiled &C = floatAdd();
  KernelSynthesizer Synth(C.TU, C.Infos, ReduceOp::Add,
                          ir::ScalarType::F32);
  SearchSpace Space = enumerateVariants();

  const size_t N = 4096 + 17; // Ragged tail on purpose.
  std::vector<float> Data = randomFloats(N, 42);
  double Expected = 0;
  for (float V : Data)
    Expected += V;

  engine::ExecutionEngine E(sim::getMaxwellGTX980());
  for (const VariantDescriptor &Base : Space.Pruned) {
    VariantDescriptor V = Base;
    V.BlockSize = 128;
    V.Coarsen = V.BlockDistributes ? 4 : 1;
    auto S = Synth.synthesize(V);
    ASSERT_TRUE(S.ok()) << V.getName() << ": "
                       << S.status().toString();

    size_t Mark = E.deviceMark();
    sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, N);
    E.getDevice().writeFloats(In, Data);
    auto Out = E.run(engine::ReduceRequest{.In = In, .N = N}, **S);
    E.deviceRelease(Mark);
    ASSERT_TRUE(Out.ok()) << V.getName() << ": "
                          << Out.status().toString();
    EXPECT_NEAR(Out->FloatValue, Expected, std::abs(Expected) * 1e-4 + 1e-2)
        << V.getName();
    EXPECT_GT(Out->Seconds, 0.0);
  }
}

/// Sweeps sizes, block sizes and coarsening for the paper's 8 best
/// versions on all three architectures (property-style grid).
struct SweepParam {
  const char *Label;
  unsigned BlockSize;
  unsigned Coarsen;
  size_t N;
};

class BestVariantSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(BestVariantSweep, CorrectOnAllArchitectures) {
  const SweepParam &P = GetParam();
  Compiled &C = floatAdd();
  KernelSynthesizer Synth(C.TU, C.Infos, ReduceOp::Add,
                          ir::ScalarType::F32);
  SearchSpace Space = enumerateVariants();
  const VariantDescriptor *Base = findByFigure6Label(Space, P.Label);
  ASSERT_NE(Base, nullptr);

  VariantDescriptor V = *Base;
  V.BlockSize = P.BlockSize;
  V.Coarsen = V.BlockDistributes ? P.Coarsen : 1;
  auto S = Synth.synthesize(V);
  ASSERT_TRUE(S.ok()) << S.status().toString();

  std::vector<float> Data = randomFloats(P.N, 7);
  double Expected = 0;
  for (float X : Data)
    Expected += X;

  unsigned Count = 0;
  const sim::ArchDesc *Archs = sim::getAllArchs(Count);
  for (unsigned A = 0; A != Count; ++A) {
    engine::ExecutionEngine E(Archs[A]);
    sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, P.N);
    E.getDevice().writeFloats(In, Data);
    auto Out = E.run(engine::ReduceRequest{.In = In, .N = P.N}, **S);
    ASSERT_TRUE(Out.ok()) << Archs[A].Name << ": "
                          << Out.status().toString();
    EXPECT_NEAR(Out->FloatValue, Expected,
                std::abs(Expected) * 1e-4 + 1e-2)
        << Archs[A].Name << " " << V.getName();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BestVariantSweep,
    ::testing::Values(
        SweepParam{"a", 64, 8, 1024}, SweepParam{"a", 256, 16, 65536},
        SweepParam{"b", 128, 4, 4096}, SweepParam{"b", 512, 8, 65536},
        SweepParam{"c", 128, 8, 16384}, SweepParam{"e", 256, 4, 8192},
        SweepParam{"k", 128, 16, 65536}, SweepParam{"m", 64, 1, 64},
        SweepParam{"m", 256, 1, 16384}, SweepParam{"n", 32, 1, 33},
        SweepParam{"n", 256, 1, 4096}, SweepParam{"p", 128, 1, 1000},
        SweepParam{"p", 1024, 1, 65536}),
    [](const ::testing::TestParamInfo<SweepParam> &Info) {
      return std::string(Info.param.Label) + "_b" +
             std::to_string(Info.param.BlockSize) + "_c" +
             std::to_string(Info.param.Coarsen) + "_n" +
             std::to_string(Info.param.N);
    });

TEST(ReductionRunner, IntReductionIsExact) {
  Compiled &C = intAdd();
  KernelSynthesizer Synth(C.TU, C.Infos, ReduceOp::Add,
                          ir::ScalarType::I32);
  SearchSpace Space = enumerateVariants();

  const size_t N = 10000;
  std::vector<int> Data(N);
  long long Expected = 0;
  for (size_t I = 0; I != N; ++I) {
    Data[I] = static_cast<int>(I % 101) - 50;
    Expected += Data[I];
  }

  engine::ExecutionEngine E(sim::getPascalP100());
  for (const char *Label : {"a", "k", "m", "n", "p"}) {
    VariantDescriptor V = *findByFigure6Label(Space, Label);
    V.BlockSize = 256;
    V.Coarsen = V.BlockDistributes ? 8 : 1;
    auto S = Synth.synthesize(V);
    ASSERT_TRUE(S.ok()) << S.status().toString();
    size_t Mark = E.deviceMark();
    sim::BufferId In = E.getDevice().alloc(ir::ScalarType::I32, N);
    E.getDevice().writeInts(In, Data);
    auto Out = E.run(engine::ReduceRequest{.In = In, .N = N}, **S);
    E.deviceRelease(Mark);
    ASSERT_TRUE(Out.ok()) << Out.status().toString();
    EXPECT_EQ(Out->IntValue, Expected) << Label;
  }
}

TEST(ReductionRunner, MaxAndMinReductions) {
  for (ReduceOp Op : {ReduceOp::Max, ReduceOp::Min}) {
    Compiled C(ir::ScalarType::I32, Op);
    KernelSynthesizer Synth(C.TU, C.Infos, Op, ir::ScalarType::I32);
    SearchSpace Space = enumerateVariants();

    const size_t N = 3000;
    std::vector<int> Data(N);
    long long Expected = Op == ReduceOp::Max ? -1000000 : 1000000;
    for (size_t I = 0; I != N; ++I) {
      Data[I] = static_cast<int>((I * 37) % 4099) - 2000;
      Expected = applyReduceOp<long long>(Op, Expected, Data[I]);
    }

    engine::ExecutionEngine E(sim::getKeplerK40c());
    for (const char *Label : {"a", "n", "p"}) {
      VariantDescriptor V = *findByFigure6Label(Space, Label);
      V.BlockSize = 128;
      V.Coarsen = V.BlockDistributes ? 4 : 1;
      auto S = Synth.synthesize(V);
      ASSERT_TRUE(S.ok()) << getReduceOpName(Op) << " "
                          << S.status().toString();
      size_t Mark = E.deviceMark();
      sim::BufferId In = E.getDevice().alloc(ir::ScalarType::I32, N);
      E.getDevice().writeInts(In, Data);
      auto Out = E.run(engine::ReduceRequest{.In = In, .N = N}, **S);
      E.deviceRelease(Mark);
      ASSERT_TRUE(Out.ok()) << Out.status().toString();
      EXPECT_EQ(Out->IntValue, Expected)
          << getReduceOpName(Op) << " " << Label;
    }
  }
}

TEST(ReductionRunner, SingleElementAndTinyInputs) {
  Compiled &C = floatAdd();
  KernelSynthesizer Synth(C.TU, C.Infos, ReduceOp::Add,
                          ir::ScalarType::F32);
  SearchSpace Space = enumerateVariants();
  engine::ExecutionEngine E(sim::getMaxwellGTX980());
  for (size_t N : {1u, 2u, 31u, 32u, 33u, 63u, 64u}) {
    std::vector<float> Data = randomFloats(N, static_cast<unsigned>(N));
    double Expected = 0;
    for (float X : Data)
      Expected += X;
    for (const char *Label : {"n", "p", "m"}) {
      VariantDescriptor V = *findByFigure6Label(Space, Label);
      V.BlockSize = 64;
      auto S = Synth.synthesize(V);
      ASSERT_TRUE(S.ok()) << S.status().toString();
      size_t Mark = E.deviceMark();
      sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, N);
      E.getDevice().writeFloats(In, Data);
      auto Out = E.run(engine::ReduceRequest{.In = In, .N = N}, **S);
      E.deviceRelease(Mark);
      ASSERT_TRUE(Out.ok()) << Out.status().toString();
      EXPECT_NEAR(Out->FloatValue, Expected, 1e-3)
          << "N=" << N << " " << Label;
    }
  }
}

} // namespace
