//===- DeprecatedShimTest.cpp - Legacy out-param shim coverage --------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// The deprecated bool/out-param shims wrap the Expected-returning APIs for
// older embedders. They stay supported until removal, so each one gets a
// success-path and an error-path check: the value comes through unchanged
// and the Status message lands in the out-parameter.
//
//===----------------------------------------------------------------------===//

#include "synth/KernelSynthesizer.h"
#include "tangram/Tangram.h"

#include <gtest/gtest.h>

// The whole file exists to call deprecated APIs.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

using namespace tangram;
using namespace tangram::synth;

namespace {

TangramReduction &facade() {
  static std::unique_ptr<TangramReduction> TR = [] {
    auto T = TangramReduction::create();
    EXPECT_TRUE(T.ok()) << T.status().toString();
    return std::move(*T);
  }();
  return *TR;
}

const VariantDescriptor &someVariant() {
  return facade().getSearchSpace().Pruned.front();
}

TEST(DeprecatedShims, FacadeCreateOutParam) {
  std::string Error = "stale";
  auto TR = TangramReduction::create(TangramReduction::Options(), Error);
  ASSERT_NE(TR, nullptr);
  EXPECT_EQ(Error, "stale") << "out-param must be untouched on success";

  TangramReduction::Options Bad;
  Bad.SourceOverride = "__codelet float broken(";
  auto Fail = TangramReduction::create(Bad, Error);
  EXPECT_EQ(Fail, nullptr);
  EXPECT_FALSE(Error.empty());
  EXPECT_NE(Error, "stale");
}

TEST(DeprecatedShims, FacadeSynthesizeOutParam) {
  std::string Error;
  auto V = facade().synthesize(someVariant(), Error);
  ASSERT_NE(V, nullptr);
  EXPECT_TRUE(Error.empty());

  VariantDescriptor Unknown = someVariant();
  Unknown.BlockSize = 7; // not a power of two: synthesis rejects it
  auto Fail = facade().synthesize(Unknown, Error);
  if (!Fail)
    EXPECT_FALSE(Error.empty());
}

TEST(DeprecatedShims, FacadeEmitCudaOutParam) {
  std::string Error;
  std::string Cuda = facade().emitCudaFor(someVariant(), Error);
  EXPECT_FALSE(Cuda.empty());
  EXPECT_TRUE(Error.empty());
  EXPECT_NE(Cuda.find("__global__"), std::string::npos);
}

TEST(DeprecatedShims, SynthesizerSynthesizeOutParam) {
  std::string Error;
  auto V = facade().getSynthesizer().synthesize(someVariant(), Error);
  ASSERT_NE(V, nullptr);
  EXPECT_TRUE(Error.empty());
  EXPECT_NE(V->K, nullptr);
}

TEST(DeprecatedShims, EngineGetVariantOutParam) {
  engine::ExecutionEngine &E = facade().engineFor(sim::getPascalP100());
  std::string Error;
  auto V = E.getVariant(someVariant(), Error);
  ASSERT_NE(V, nullptr);
  EXPECT_TRUE(Error.empty());
}

TEST(DeprecatedShims, EngineRunReductionOutcome) {
  engine::ExecutionEngine &E = facade().engineFor(sim::getPascalP100());
  std::string Error;
  auto V = E.getVariant(someVariant(), Error);
  ASSERT_NE(V, nullptr);

  const size_t N = 2048;
  size_t Mark = E.deviceMark();
  sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, N);
  std::vector<float> Host(N, 0.5f);
  E.getDevice().writeFloats(In, Host);
  engine::RunOutcome Out =
      E.runReductionOutcome(*V, In, N, sim::ExecMode::Functional);
  E.deviceRelease(Mark);
  ASSERT_TRUE(Out.Ok) << Out.Error;
  EXPECT_NEAR(Out.FloatValue, N * 0.5, 1e-3);
}

TEST(DeprecatedShims, EngineReduceOutcome) {
  engine::ExecutionEngine &E = facade().engineFor(sim::getMaxwellGTX980());
  const size_t N = 1024;
  size_t Mark = E.deviceMark();
  sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, N);
  std::vector<float> Host(N, 2.0f);
  E.getDevice().writeFloats(In, Host);
  engine::RunOutcome Out =
      E.reduceOutcome(someVariant(), In, N, sim::ExecMode::Functional);
  E.deviceRelease(Mark);
  ASSERT_TRUE(Out.Ok) << Out.Error;
  EXPECT_NEAR(Out.FloatValue, N * 2.0, 1e-3);

  // Error path: an engine without an attached compiler fails with a
  // message, not a crash.
  engine::ExecutionEngine Bare(sim::getMaxwellGTX980());
  engine::RunOutcome Bad =
      Bare.reduceOutcome(someVariant(), In, N, sim::ExecMode::Functional);
  EXPECT_FALSE(Bad.Ok);
  EXPECT_FALSE(Bad.Error.empty());
}

} // namespace
