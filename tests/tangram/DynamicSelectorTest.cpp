//===- DynamicSelectorTest.cpp - Runtime selection tests ----------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//

#include "tangram/DynamicSelector.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace tangram;
using namespace tangram::synth;

namespace {

TangramReduction &facade() {
  static std::unique_ptr<TangramReduction> TR = [] {
    auto T = TangramReduction::create();
    EXPECT_TRUE(T.ok()) << T.status().toString();
    return std::move(*T);
  }();
  return *TR;
}

TEST(DynamicSelector, DefaultPortfolioIsTheBestEight) {
  DynamicSelector Selector(facade());
  // Exploration phase: exactly eight calls until convergence per bucket.
  const sim::ArchDesc &Arch = sim::getMaxwellGTX980();
  const size_t N = 4096;
  std::vector<float> Data(N, 0.5f);
  engine::ExecutionEngine &E = facade().engineFor(Arch);
  for (unsigned Call = 0; Call != 8; ++Call) {
    EXPECT_FALSE(Selector.isConverged(Arch, N));
    size_t Mark = E.deviceMark();
    sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, N);
    E.getDevice().writeFloats(In, Data);
    auto Out =
        Selector.reduce(E, engine::ReduceRequest{.In = In, .N = N});
    E.deviceRelease(Mark);
    ASSERT_TRUE(Out.ok()) << Out.status().toString();
    EXPECT_NEAR(Out->FloatValue, N * 0.5, 1e-2);
  }
  EXPECT_TRUE(Selector.isConverged(Arch, N));
  ASSERT_NE(Selector.getBest(Arch, N), nullptr);
}

TEST(DynamicSelector, EveryCallReturnsCorrectResult) {
  // Correctness must hold during exploration AND exploitation.
  DynamicSelector Selector(facade());
  const sim::ArchDesc &Arch = sim::getPascalP100();
  const size_t N = 10007;
  std::vector<float> Data(N);
  double Expected = 0;
  for (size_t I = 0; I != N; ++I) {
    Data[I] = static_cast<float>((I % 11)) * 0.125f;
    Expected += Data[I];
  }
  engine::ExecutionEngine &E = facade().engineFor(Arch);
  for (unsigned Call = 0; Call != 12; ++Call) {
    size_t Mark = E.deviceMark();
    sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, N);
    E.getDevice().writeFloats(In, Data);
    auto Out =
        Selector.reduce(E, engine::ReduceRequest{.In = In, .N = N});
    E.deviceRelease(Mark);
    ASSERT_TRUE(Out.ok()) << "call " << Call << ": "
                          << Out.status().toString();
    EXPECT_NEAR(Out->FloatValue, Expected, Expected * 1e-4);
  }
}

TEST(DynamicSelector, ConvergesToArchAppropriateWinner) {
  DynamicSelector Maxwell(facade());
  DynamicSelector Kepler(facade());
  const size_t N = 1024;
  std::vector<float> Data(N, 1.0f);

  auto Converge = [&](DynamicSelector &Sel, const sim::ArchDesc &Arch) {
    engine::ExecutionEngine &E = facade().engineFor(Arch);
    for (unsigned Call = 0; Call != 8; ++Call) {
      size_t Mark = E.deviceMark();
      sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, N);
      E.getDevice().writeFloats(In, Data);
      EXPECT_TRUE(
          Sel.reduce(E, engine::ReduceRequest{.In = In, .N = N}).ok());
      E.deviceRelease(Mark);
    }
  };
  Converge(Maxwell, sim::getMaxwellGTX980());
  Converge(Kepler, sim::getKeplerK40c());

  const VariantDescriptor *MaxwellBest =
      Maxwell.getBest(sim::getMaxwellGTX980(), N);
  const VariantDescriptor *KeplerBest =
      Kepler.getBest(sim::getKeplerK40c(), N);
  ASSERT_TRUE(MaxwellBest && KeplerBest);
  // The Section IV-C story: Maxwell's native shared atomics pick (n);
  // Kepler's lock loop avoids it.
  EXPECT_EQ(MaxwellBest->getFigure6Label(), "n");
  EXPECT_NE(KeplerBest->getFigure6Label(), "n");
}

TEST(DynamicSelector, BucketsAreIndependent) {
  DynamicSelector Selector(facade());
  const sim::ArchDesc &Arch = sim::getMaxwellGTX980();
  EXPECT_NE(DynamicSelector::bucketOf(64),
            DynamicSelector::bucketOf(1 << 20));
  std::vector<float> Data(64, 1.0f);
  engine::ExecutionEngine &E = facade().engineFor(Arch);
  size_t Mark = E.deviceMark();
  sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, 64);
  E.getDevice().writeFloats(In, Data);
  EXPECT_TRUE(
      Selector.reduce(E, engine::ReduceRequest{.In = In, .N = 64}).ok());
  E.deviceRelease(Mark);
  // A different bucket has seen nothing yet.
  EXPECT_FALSE(Selector.isConverged(Arch, 1 << 20));
  EXPECT_EQ(Selector.getBest(Arch, 1 << 20), nullptr);
}

TEST(DynamicSelector, CustomPortfolio) {
  std::vector<VariantDescriptor> Portfolio = {
      *findByFigure6Label(facade().getSearchSpace(), "l"),
      *findByFigure6Label(facade().getSearchSpace(), "m"),
  };
  DynamicSelector Selector(facade(), Portfolio);
  const sim::ArchDesc &Arch = sim::getKeplerK40c();
  std::vector<float> Data(512, 2.0f);
  engine::ExecutionEngine &E = facade().engineFor(Arch);
  for (unsigned Call = 0; Call != 2; ++Call) {
    size_t Mark = E.deviceMark();
    sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, 512);
    E.getDevice().writeFloats(In, Data);
    EXPECT_TRUE(
        Selector.reduce(E, engine::ReduceRequest{.In = In, .N = 512}).ok());
    E.deviceRelease(Mark);
  }
  EXPECT_TRUE(Selector.isConverged(Arch, 512));
  const VariantDescriptor *Best = Selector.getBest(Arch, 512);
  ASSERT_NE(Best, nullptr);
  std::string Label = Best->getFigure6Label();
  EXPECT_TRUE(Label == "l" || Label == "m");
}

} // namespace
