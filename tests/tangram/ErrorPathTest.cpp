//===- ErrorPathTest.cpp - Structured failure-status tests --------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// The Expected<T> API contract: every public-facade failure arrives as a
// Status with a machine-checkable code and a human-readable message, not
// as a bool/out-param pair or a crash.
//
//===----------------------------------------------------------------------===//

#include "tangram/Tangram.h"

#include <gtest/gtest.h>

using namespace tangram;
using namespace tangram::synth;
using support::StatusCode;

namespace {

TEST(ErrorPath, MalformedSourceIsParseError) {
  TangramReduction::Options Opts;
  Opts.SourceOverride = "codelet __tangram__ {{{";
  auto TR = TangramReduction::create(Opts);
  ASSERT_FALSE(TR.ok());
  EXPECT_EQ(TR.code(), StatusCode::ParseError);
  EXPECT_FALSE(TR.status().Message.empty());
  EXPECT_NE(TR.status().toString().find("parse-error"), std::string::npos)
      << TR.status().toString();
}

TEST(ErrorPath, MissingCanonicalCodeletIsUnknownVariant) {
  // A well-formed unit that lacks the canonical spectrum codelets: create
  // succeeds (the language layer is satisfied), but synthesizing any
  // cooperative variant must fail with UnknownVariant, naming the tag.
  TangramReduction::Options Opts;
  Opts.SourceOverride =
      "__codelet __tag(serial)\n"
      "float sum(const Array<1,float> in) {\n"
      "  unsigned len = in.Size();\n"
      "  float accum = 0.0;\n"
      "  for (unsigned i = 0; i < len; i += in.Stride()) {\n"
      "    accum += in[i];\n"
      "  }\n"
      "  return accum;\n"
      "}\n";
  auto TR = TangramReduction::create(Opts);
  ASSERT_TRUE(TR.ok()) << TR.status().toString();
  VariantDescriptor V; // Defaults use a cooperative tree codelet.
  auto S = (*TR)->synthesize(V);
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), StatusCode::UnknownVariant);
  EXPECT_NE(S.status().Message.find("canonical codelet"), std::string::npos)
      << S.status().Message;
}

TEST(ErrorPath, OversizedBlockIsLaunchError) {
  auto TR = TangramReduction::create();
  ASSERT_TRUE(TR.ok()) << TR.status().toString();
  VariantDescriptor V = (*TR)->getSearchSpace().Pruned.front();
  V.BlockSize = 2048; // Every modeled arch caps at 1024.
  engine::ExecutionEngine &E = (*TR)->engineFor(sim::getPascalP100());
  size_t Mark = E.deviceMark();
  sim::BufferId In = E.getDevice().alloc(ir::ScalarType::F32, 4096);
  auto Out = E.run(engine::ReduceRequest{.Desc = V, .In = In, .N = 4096});
  E.deviceRelease(Mark);
  ASSERT_FALSE(Out.ok());
  EXPECT_EQ(Out.code(), StatusCode::LaunchError);
  EXPECT_NE(Out.status().Message.find("exceeds the architecture limit"),
            std::string::npos)
      << Out.status().Message;
}

TEST(ErrorPath, RaceCheckPropagatesLaunchError) {
  auto TR = TangramReduction::create();
  ASSERT_TRUE(TR.ok()) << TR.status().toString();
  VariantDescriptor V = (*TR)->getSearchSpace().Pruned.front();
  V.BlockSize = 2048;
  engine::DiagnoseRequest DR;
  DR.Kind = engine::DiagnoseKind::Race;
  DR.Desc = V;
  DR.N = 4096;
  auto Report = (*TR)->diagnose(sim::getKeplerK40c(), DR);
  ASSERT_FALSE(Report.ok());
  EXPECT_EQ(Report.code(), StatusCode::LaunchError);
}

TEST(ErrorPath, EngineWithoutCompilerIsInvalidArgument) {
  engine::ExecutionEngine E(sim::getMaxwellGTX980());
  VariantDescriptor V;
  auto S = E.getVariant(V);
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), StatusCode::InvalidArgument);
}

TEST(ErrorPath, StatusRendersCodeAndMessage) {
  support::Status S(StatusCode::SynthesisError, "boom");
  EXPECT_EQ(S.toString(), "synthesis-error: boom");
  support::Status Ok = support::Status::success();
  EXPECT_TRUE(Ok.ok());
}

} // namespace
