//===- TangramTest.cpp - Facade and figure-shape tests ------------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// End-to-end tests of the public facade plus the paper's qualitative
// claims as executable assertions: per-architecture winning variant
// families, the small-N Tangram advantage over CUB, the large-N CUB
// advantage, and the Kokkos crossover (Sections IV-C1..4).
//
//===----------------------------------------------------------------------===//

#include "tangram/FigureHarness.h"
#include "tangram/Tangram.h"

#include <gtest/gtest.h>

using namespace tangram;
using namespace tangram::synth;

namespace {

TangramReduction &facade() {
  static std::unique_ptr<TangramReduction> TR = [] {
    auto T = TangramReduction::create();
    EXPECT_TRUE(T.ok()) << T.status().toString();
    return std::move(*T);
  }();
  return *TR;
}

TEST(Tangram, CreateCompilesCanonicalSource) {
  TangramReduction &TR = facade();
  EXPECT_EQ(TR.getUnit().Codelets.size(), 6u);
  EXPECT_EQ(TR.getSearchSpace().Pruned.size(), 30u);
  EXPECT_FALSE(TR.getSourceText().empty());
}

TEST(Tangram, TuneRespectsCandidateBounds) {
  TangramReduction &TR = facade();
  VariantDescriptor V =
      *findByFigure6Label(TR.getSearchSpace(), "a");
  VariantDescriptor Tuned = TR.tune(V, sim::getMaxwellGTX980(), 1 << 20);
  const auto &Opts = TR.getOptions();
  EXPECT_NE(std::find(Opts.BlockSizes.begin(), Opts.BlockSizes.end(),
                      Tuned.BlockSize),
            Opts.BlockSizes.end());
  EXPECT_LE(static_cast<size_t>(Tuned.BlockSize) * Tuned.Coarsen,
            Opts.MaxElemsPerBlock);
  EXPECT_TRUE(Tuned.sameStructure(V));
}

TEST(Tangram, TimeVariantIsFiniteForAllPruned) {
  TangramReduction &TR = facade();
  for (const VariantDescriptor &V : TR.getSearchSpace().Pruned) {
    double T = TR.timeVariant(V, sim::getKeplerK40c(), 4096);
    EXPECT_GT(T, 0.0) << V.getName();
    EXPECT_LT(T, 1.0) << V.getName();
  }
}

TEST(Tangram, InfeasibleSharedFootprintPricedOut) {
  // A direct-coop tree at block size 1024 needs >4KB shared; still fine.
  // Block size above the arch limit must never be selected by tune().
  TangramReduction &TR = facade();
  VariantDescriptor V = *findByFigure6Label(TR.getSearchSpace(), "l");
  VariantDescriptor Tuned = TR.tune(V, sim::getPascalP100(), 1 << 16);
  EXPECT_LE(Tuned.BlockSize, sim::getPascalP100().MaxThreadsPerBlock);
}

//===----------------------------------------------------------------------===//
// The paper's qualitative claims (Sections IV-C1..4)
//===----------------------------------------------------------------------===//

struct ArchCase {
  const sim::ArchDesc *Arch;
  /// Expected winner labels for small inputs (1K).
  std::vector<std::string> SmallWinners;
};

class PerArchClaims : public ::testing::TestWithParam<int> {};

TEST_P(PerArchClaims, SmallArrayWinnersUseTheNewInstructions) {
  unsigned Count = 0;
  const sim::ArchDesc *Archs = sim::getAllArchs(Count);
  const sim::ArchDesc &Arch = Archs[GetParam()];
  TangramReduction::BestResult Best = facade().findBest(Arch, 1024);
  // Small arrays: direct cooperative codelets with shared atomics and/or
  // shuffles win everywhere (versions n/p family).
  EXPECT_FALSE(Best.Desc.BlockDistributes) << Arch.Name;
  EXPECT_TRUE(coopUsesSharedAtomics(Best.Desc.Coop) ||
              coopUsesShuffle(Best.Desc.Coop))
      << Arch.Name << " picked " << Best.Desc.getName();
  if (Arch.Gen == sim::ArchGeneration::Kepler) {
    // Kepler's software-lock shared atomics: the all-threads accumulator
    // (n) must NOT be the winner (Section IV-C2).
    EXPECT_NE(Best.Fig6Label, "n") << Arch.Name;
  } else {
    // Native units make (n) the small-array winner (Sections IV-C3/4).
    EXPECT_EQ(Best.Fig6Label, "n") << Arch.Name;
  }
}

TEST_P(PerArchClaims, LargeArraysPreferCoarsenedStridedVersions) {
  unsigned Count = 0;
  const sim::ArchDesc *Archs = sim::getAllArchs(Count);
  const sim::ArchDesc &Arch = Archs[GetParam()];
  TangramReduction::BestResult Best = facade().findBest(Arch, 1 << 26);
  // Large arrays: two-level distribution with strided (coalesced) thread
  // access and coarsening ("distribute the input array twice").
  EXPECT_TRUE(Best.Desc.BlockDistributes) << Arch.Name;
  EXPECT_EQ(Best.Desc.BlockDist, DistPattern::Strided) << Arch.Name;
  EXPECT_GT(Best.Desc.Coarsen, 1u) << Arch.Name;
}

std::string archCaseName(const ::testing::TestParamInfo<int> &Info) {
  return Info.param == 0   ? "Kepler"
         : Info.param == 1 ? "Maxwell"
                           : "Pascal";
}

INSTANTIATE_TEST_SUITE_P(AllArchs, PerArchClaims, ::testing::Values(0, 1, 2),
                         archCaseName);

TEST(FigureShape, SmallArraysBeatCubEverywhere) {
  FigureHarness H(facade());
  unsigned Count = 0;
  const sim::ArchDesc *Archs = sim::getAllArchs(Count);
  for (unsigned A = 0; A != Count; ++A) {
    FigureRow R = H.measure(Archs[A], 4096);
    EXPECT_GT(R.tangramSpeedup(), 2.0) << Archs[A].Name;
    EXPECT_LT(R.tangramSpeedup(), 12.0) << Archs[A].Name;
  }
}

TEST(FigureShape, LargeArraysLoseToCub) {
  // Section IV-C1: 17-38% slower than CUB beyond ~16M-268M elements.
  FigureHarness H(facade());
  unsigned Count = 0;
  const sim::ArchDesc *Archs = sim::getAllArchs(Count);
  for (unsigned A = 0; A != Count; ++A) {
    FigureRow R = H.measure(Archs[A], 1u << 28);
    EXPECT_LT(R.tangramSpeedup(), 1.0) << Archs[A].Name;
    EXPECT_GT(R.tangramSpeedup(), 0.55) << Archs[A].Name;
  }
}

TEST(FigureShape, KokkosCrossesOverAtLargeSizes) {
  FigureHarness H(facade());
  const sim::ArchDesc &Arch = sim::getKeplerK40c();
  FigureRow Small = H.measure(Arch, 4096);
  FigureRow Huge = H.measure(Arch, 1u << 28);
  EXPECT_LT(Small.kokkosSpeedup(), 1.0);
  EXPECT_GT(Huge.kokkosSpeedup(), 2.0);
}

TEST(FigureShape, OpenMpWinsSmallLosesLarge) {
  FigureHarness H(facade());
  const sim::ArchDesc &Arch = sim::getMaxwellGTX980();
  FigureRow Small = H.measure(Arch, 256);
  FigureRow Large = H.measure(Arch, 1u << 24);
  EXPECT_GT(Small.ompSpeedup(), 3.0);
  EXPECT_LT(Large.ompSpeedup(), 0.6);
}

TEST(FigureShape, PascalPeakSpeedupNearPaperHeadline) {
  // "up to 7.8x" — the peak lives in Pascal's small/medium region.
  FigureHarness H(facade());
  FigureRow R = H.measure(sim::getPascalP100(), 16384);
  EXPECT_GT(R.tangramSpeedup(), 6.0);
  EXPECT_LT(R.tangramSpeedup(), 11.0);
}

TEST(FigureHarnessTable, FormatsAllColumns) {
  FigureHarness H(facade());
  std::vector<FigureRow> Rows = {H.measure(sim::getKeplerK40c(), 1024)};
  std::string Table = formatFigureTable("Fig. X", Rows);
  EXPECT_NE(Table.find("Fig. X"), std::string::npos);
  EXPECT_NE(Table.find("1024"), std::string::npos);
  EXPECT_NE(Table.find("tangram_x"), std::string::npos);
}

} // namespace
