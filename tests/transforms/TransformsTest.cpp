//===- TransformsTest.cpp - AST transformation pass tests -------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// Exercises the paper's three AST passes on the canonical reduction
// source: the global-atomic Map pass (Section III-A), the shared-atomic
// qualifier pass (Section III-B), and the Fig. 4 warp-shuffle detector
// (Section III-C).
//
//===----------------------------------------------------------------------===//

#include "transforms/Pipeline.h"

#include "lang/ASTCloner.h"
#include "lang/ASTPrinter.h"
#include "lang/Parser.h"
#include "sema/Sema.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "synth/ReductionSpectrum.h"

#include <gtest/gtest.h>

using namespace tangram;
using namespace tangram::lang;
using namespace tangram::transforms;

namespace {

struct Fixture {
  std::unique_ptr<SourceManager> SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::unique_ptr<ASTContext> Ctx;
  TranslationUnit TU;

  explicit Fixture(const std::string &Text) {
    SM = std::make_unique<SourceManager>("test.tgr", Text);
    Diags = std::make_unique<DiagnosticEngine>(*SM);
    Ctx = std::make_unique<ASTContext>();
    Parser P(*SM, *Ctx, *Diags);
    TU = P.parseTranslationUnit();
    EXPECT_FALSE(Diags->hasErrors()) << Diags->renderAll();
    sema::Sema S(*Ctx, *Diags);
    EXPECT_TRUE(S.analyze(TU)) << Diags->renderAll();
  }
};

Fixture &canonical() {
  static Fixture F(synth::getReductionSource());
  return F;
}

//===----------------------------------------------------------------------===//
// Section III-A: global-atomic Map pass
//===----------------------------------------------------------------------===//

TEST(GlobalAtomicMapPass, DetectsAtomicApiAndSpectrumCall) {
  Fixture &F = canonical();
  CodeletDecl *C = F.TU.findByTag("dist_tile");
  auto Info = analyzeGlobalAtomicMap(C);
  ASSERT_TRUE(Info.has_value());
  EXPECT_EQ(Info->Op, ReduceOp::Add);
  ASSERT_NE(Info->MapVar, nullptr);
  EXPECT_EQ(Info->MapVar->getName(), "map");
  ASSERT_NE(Info->SpectrumCall, nullptr);
  EXPECT_TRUE(Info->SameComputation);
}

TEST(GlobalAtomicMapPass, NoAtomicApiMeansNoInfo) {
  Fixture &F = canonical();
  EXPECT_FALSE(analyzeGlobalAtomicMap(F.TU.findByTag("serial")).has_value());
  EXPECT_FALSE(
      analyzeGlobalAtomicMap(F.TU.findByTag("coop_tree")).has_value());
}

TEST(GlobalAtomicMapPass, AtomicVariantDisablesSpectrumCall) {
  Fixture &F = canonical();
  ASTCloner Cloner(*F.Ctx);
  CodeletDecl *Clone = Cloner.clone(F.TU.findByTag("dist_tile"));
  auto Info = analyzeGlobalAtomicMap(Clone);
  ASSERT_TRUE(Info.has_value());
  EXPECT_TRUE(applyGlobalAtomicVariant(Clone, *Info, /*EnableAtomic=*/true));
  EXPECT_TRUE(Info->SpectrumCall->isDisabled());
  EXPECT_NE(printCodelet(Clone).find("/*disabled*/sum(map)"),
            std::string::npos);
}

TEST(GlobalAtomicMapPass, NonAtomicVariantRemovesApiStatement) {
  Fixture &F = canonical();
  ASTCloner Cloner(*F.Ctx);
  CodeletDecl *Clone = Cloner.clone(F.TU.findByTag("dist_tile"));
  auto Info = analyzeGlobalAtomicMap(Clone);
  ASSERT_TRUE(Info.has_value());
  EXPECT_TRUE(
      applyGlobalAtomicVariant(Clone, *Info, /*EnableAtomic=*/false));
  EXPECT_EQ(printCodelet(Clone).find("atomicAdd"), std::string::npos);
}

TEST(GlobalAtomicMapPass, DifferentComputationKeepsSpectrumCall) {
  // The spectrum call applies a different spectrum than the atomic API's
  // computation: the pass must not disable it.
  Fixture F("__codelet int other(const Array<1,int> in) { return 0; }\n"
            "__codelet int sum(const Array<1,int> in) {\n"
            "  __tunable unsigned p;\n"
            "  Sequence s(tiled);\n"
            "  Map map(sum, partition(in, p, s, s, s));\n"
            "  map.atomicAdd();\n"
            "  return other(map);\n"
            "}");
  CodeletDecl *C = F.TU.getSpectrum("sum").front();
  auto Info = analyzeGlobalAtomicMap(C);
  ASSERT_TRUE(Info.has_value());
  EXPECT_FALSE(Info->SameComputation);
  EXPECT_FALSE(applyGlobalAtomicVariant(C, *Info, /*EnableAtomic=*/true));
}

TEST(GlobalAtomicMapPass, AllFourOperatorsSupported) {
  const char *Api[4] = {"atomicAdd", "atomicSub", "atomicMax", "atomicMin"};
  ReduceOp Ops[4] = {ReduceOp::Add, ReduceOp::Sub, ReduceOp::Max,
                     ReduceOp::Min};
  for (int I = 0; I != 4; ++I) {
    Fixture F("__codelet int sum(const Array<1,int> in) {\n"
              "  __tunable unsigned p;\n"
              "  Sequence s(tiled);\n"
              "  Map map(sum, partition(in, p, s, s, s));\n"
              "  map." +
              std::string(Api[I]) +
              "();\n"
              "  return sum(map);\n"
              "}");
    auto Info = analyzeGlobalAtomicMap(F.TU.Codelets[0]);
    ASSERT_TRUE(Info.has_value());
    EXPECT_EQ(Info->Op, Ops[I]);
  }
}

//===----------------------------------------------------------------------===//
// Section III-B: shared-atomic qualifier pass
//===----------------------------------------------------------------------===//

TEST(SharedAtomicAnalysis, FindsWritesInSharedV1) {
  Fixture &F = canonical();
  SharedAtomicInfo Info =
      analyzeSharedAtomics(F.TU.findByTag("shared_V1"));
  ASSERT_EQ(Info.AtomicVars.size(), 1u);
  EXPECT_EQ(Info.AtomicVars[0]->getName(), "tmp");
  ASSERT_EQ(Info.Writes.size(), 1u);
  EXPECT_EQ(Info.Writes[0].Op, ReduceOp::Add);
  EXPECT_EQ(Info.Writes[0].Var->getName(), "tmp");
}

TEST(SharedAtomicAnalysis, FindsWritesInSharedV2) {
  Fixture &F = canonical();
  SharedAtomicInfo Info =
      analyzeSharedAtomics(F.TU.findByTag("shared_V2"));
  ASSERT_EQ(Info.AtomicVars.size(), 1u);
  EXPECT_EQ(Info.AtomicVars[0]->getName(), "partial");
  // Exactly one write becomes an atomic: `partial = val` under LaneId()==0.
  // The read `val = partial` is not a write.
  ASSERT_EQ(Info.Writes.size(), 1u);
  EXPECT_TRUE(Info.isAtomicWrite(Info.Writes[0].Write));
}

TEST(SharedAtomicAnalysis, TreeCodeletHasNone) {
  Fixture &F = canonical();
  SharedAtomicInfo Info = analyzeSharedAtomics(F.TU.findByTag("coop_tree"));
  EXPECT_TRUE(Info.AtomicVars.empty());
  EXPECT_FALSE(Info.any());
}

TEST(SharedAtomicAnalysis, MaxQualifierCarriesOperator) {
  Fixture F("__codelet __coop int m(const Array<1,int> in) {\n"
            "  Vector vthread();\n"
            "  __shared _atomicMax int best;\n"
            "  int v = in[vthread.ThreadId()];\n"
            "  best = v;\n"
            "  return best;\n"
            "}");
  SharedAtomicInfo Info = analyzeSharedAtomics(F.TU.Codelets[0]);
  ASSERT_EQ(Info.Writes.size(), 1u);
  EXPECT_EQ(Info.Writes[0].Op, ReduceOp::Max);
}

//===----------------------------------------------------------------------===//
// Section III-C: warp-shuffle detection (Fig. 4)
//===----------------------------------------------------------------------===//

TEST(WarpShuffleDetect, MatchesBothTreeLoopsOfFig1c) {
  Fixture &F = canonical();
  auto Opps = detectWarpShuffle(F.TU.findByTag("coop_tree"));
  ASSERT_EQ(Opps.size(), 2u);
  // First loop reduces over `tmp`, second over `partial`.
  EXPECT_EQ(Opps[0].Array->getName(), "tmp");
  EXPECT_EQ(Opps[1].Array->getName(), "partial");
  EXPECT_EQ(Opps[0].Direction, ir::ShuffleMode::Down);
  EXPECT_EQ(Opps[1].Direction, ir::ShuffleMode::Down);
  EXPECT_EQ(Opps[0].Accumulator->getName(), "val");
}

TEST(WarpShuffleDetect, ArrayElisionFollowsProducerConsumer) {
  // `tmp` holds data straight from the input: elidable. `partial` is fed
  // by the first loop's accumulator: must stay (Listing 4).
  Fixture &F = canonical();
  auto Opps = detectWarpShuffle(F.TU.findByTag("coop_tree"));
  ASSERT_EQ(Opps.size(), 2u);
  EXPECT_TRUE(Opps[0].ElideArray);
  EXPECT_FALSE(Opps[1].ElideArray);
}

TEST(WarpShuffleDetect, SharedV2LoopMatches) {
  Fixture &F = canonical();
  auto Opps = detectWarpShuffle(F.TU.findByTag("shared_V2"));
  ASSERT_EQ(Opps.size(), 1u);
  EXPECT_EQ(Opps[0].Array->getName(), "tmp");
  EXPECT_TRUE(Opps[0].ElideArray);
}

TEST(WarpShuffleDetect, SerialCodeletHasNoMatches) {
  Fixture &F = canonical();
  EXPECT_TRUE(detectWarpShuffle(F.TU.findByTag("serial")).empty());
  EXPECT_TRUE(detectWarpShuffle(F.TU.findByTag("shared_V1")).empty());
}

TEST(WarpShuffleDetect, Step1RequiresVectorBounds) {
  // Same loop shape but constant bounds: step (1) must reject it.
  Fixture F("__codelet __coop int f(const Array<1,int> in) {\n"
            "  Vector vthread();\n"
            "  __shared int tmp[in.Size()];\n"
            "  int val = in[vthread.ThreadId()];\n"
            "  tmp[vthread.ThreadId()] = val;\n"
            "  for (int offset = 16; offset > 0; offset /= 2) {\n"
            "    val += tmp[vthread.ThreadId() + offset];\n"
            "    tmp[vthread.ThreadId()] = val;\n"
            "  }\n"
            "  return val;\n"
            "}");
  EXPECT_TRUE(detectWarpShuffle(F.TU.Codelets[0]).empty());
}

TEST(WarpShuffleDetect, Step2RejectsNonConstantUpdate) {
  Fixture F("__codelet __coop int f(const Array<1,int> in) {\n"
            "  Vector vthread();\n"
            "  __shared int tmp[in.Size()];\n"
            "  int val = in[vthread.ThreadId()];\n"
            "  int step = 2;\n"
            "  tmp[vthread.ThreadId()] = val;\n"
            "  for (int offset = vthread.MaxSize() / 2; offset > 0; "
            "offset /= step) {\n"
            "    val += tmp[vthread.ThreadId() + offset];\n"
            "    tmp[vthread.ThreadId()] = val;\n"
            "  }\n"
            "  return val;\n"
            "}");
  EXPECT_TRUE(detectWarpShuffle(F.TU.Codelets[0]).empty());
}

TEST(WarpShuffleDetect, Step4RequiresIteratorInReadIndex) {
  Fixture F("__codelet __coop int f(const Array<1,int> in) {\n"
            "  Vector vthread();\n"
            "  __shared int tmp[in.Size()];\n"
            "  int val = in[vthread.ThreadId()];\n"
            "  tmp[vthread.ThreadId()] = val;\n"
            "  for (int offset = vthread.MaxSize() / 2; offset > 0; "
            "offset /= 2) {\n"
            "    val += tmp[vthread.ThreadId()];\n" // No iterator use.
            "    tmp[vthread.ThreadId()] = val;\n"
            "  }\n"
            "  return val;\n"
            "}");
  EXPECT_TRUE(detectWarpShuffle(F.TU.Codelets[0]).empty());
}

TEST(WarpShuffleDetect, Step7RejectsIteratorInWriteIndex) {
  Fixture F("__codelet __coop int f(const Array<1,int> in) {\n"
            "  Vector vthread();\n"
            "  __shared int tmp[in.Size()];\n"
            "  int val = in[vthread.ThreadId()];\n"
            "  tmp[vthread.ThreadId()] = val;\n"
            "  for (int offset = vthread.MaxSize() / 2; offset > 0; "
            "offset /= 2) {\n"
            "    val += tmp[vthread.ThreadId() + offset];\n"
            "    tmp[vthread.ThreadId() + offset] = val;\n"
            "  }\n"
            "  return val;\n"
            "}");
  EXPECT_TRUE(detectWarpShuffle(F.TU.Codelets[0]).empty());
}

TEST(WarpShuffleDetect, IncreasingIteratorSelectsShflUp) {
  Fixture F("__codelet __coop int f(const Array<1,int> in) {\n"
            "  Vector vthread();\n"
            "  __shared int tmp[in.Size()];\n"
            "  int val = in[vthread.ThreadId()];\n"
            "  tmp[vthread.ThreadId()] = val;\n"
            "  for (int offset = vthread.MaxSize() / 32; offset < 32; "
            "offset *= 2) {\n"
            "    val += tmp[vthread.ThreadId() + offset];\n"
            "    tmp[vthread.ThreadId()] = val;\n"
            "  }\n"
            "  return val;\n"
            "}");
  auto Opps = detectWarpShuffle(F.TU.Codelets[0]);
  ASSERT_EQ(Opps.size(), 1u);
  EXPECT_EQ(Opps[0].Direction, ir::ShuffleMode::Up);
}

//===----------------------------------------------------------------------===//
// General transforms + pipeline
//===----------------------------------------------------------------------===//

TEST(GeneralTransforms, MapStructureOfCompoundCodelets) {
  Fixture &F = canonical();
  auto Tile = analyzeMapStructure(F.TU.findByTag("dist_tile"));
  ASSERT_TRUE(Tile.has_value());
  EXPECT_EQ(Tile->MappedSpectrum, "sum");
  EXPECT_EQ(Tile->Pattern, DistPattern::Tiled);
  ASSERT_NE(Tile->TunableCount, nullptr);
  EXPECT_EQ(Tile->TunableCount->getName(), "p");
  ASSERT_NE(Tile->Partition, nullptr);

  auto Stride = analyzeMapStructure(F.TU.findByTag("dist_stride"));
  ASSERT_TRUE(Stride.has_value());
  EXPECT_EQ(Stride->Pattern, DistPattern::Strided);

  EXPECT_FALSE(analyzeMapStructure(F.TU.findByTag("serial")).has_value());
}

TEST(GeneralTransforms, ArgumentLinkFindsInputArray) {
  Fixture &F = canonical();
  for (const char *Tag : {"serial", "coop_tree", "shared_V1", "shared_V2"}) {
    auto Info = analyzeArgumentLink(F.TU.findByTag(Tag));
    ASSERT_NE(Info.InputArray, nullptr) << Tag;
    EXPECT_EQ(Info.InputArray->getName(), "in");
  }
}

TEST(GeneralTransforms, ReturnPromotionFindsTailReturn) {
  Fixture &F = canonical();
  for (lang::CodeletDecl *C : F.TU.Codelets)
    EXPECT_NE(analyzeReturnPromotion(C).TailReturn, nullptr)
        << C->getTag();
}

TEST(Pipeline, AggregatesAllPassResults) {
  Fixture &F = canonical();
  auto Results = runTransformPipeline(F.TU);
  EXPECT_EQ(Results.size(), 6u);

  const auto &Tile = Results.at(F.TU.findByTag("dist_tile"));
  EXPECT_TRUE(Tile.GlobalAtomic.has_value());
  EXPECT_TRUE(Tile.MapStructure.has_value());
  EXPECT_EQ(Tile.variantAxisCount(), 1u);

  const auto &Tree = Results.at(F.TU.findByTag("coop_tree"));
  EXPECT_EQ(Tree.Shuffles.size(), 2u);
  EXPECT_FALSE(Tree.SharedAtomics.any());
  EXPECT_EQ(Tree.variantAxisCount(), 1u);

  const auto &V2 = Results.at(F.TU.findByTag("shared_V2"));
  EXPECT_TRUE(V2.SharedAtomics.any());
  EXPECT_EQ(V2.Shuffles.size(), 1u);

  const auto &Serial = Results.at(F.TU.findByTag("serial"));
  EXPECT_EQ(Serial.variantAxisCount(), 0u);
}

} // namespace
