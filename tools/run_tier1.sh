#!/usr/bin/env sh
# Tier-1 gate: configure, build, and run the full test suite exactly the
# way CI does. Run from anywhere; exits nonzero on the first failure.
#
# After the plain tier-1 suite passes, the suite runs once more with
# TGR_VERIFY_EACH=1 (the tier1-verify-each preset): every lowering
# pipeline re-verifies the kernel IR after every pass — including the
# reduce::OpDef atomic-legality check, so an op/arch-illegal or
# under-expanded atomic fails with the pass's name even if a later pass
# would have masked the damage. Skip with --no-verify-each.
#
# Finally the `op-matrix` labeled suites (the tier1-opmatrix preset) run
# under the same per-pass verification: the reduction-op x dtype sweeps
# across {Add, Min, Max, ArgMax} x {F32, I32, I64}. They are part of the
# plain suite too; the dedicated pass pins the label wiring so the sweep
# can be invoked alone (`ctest --preset tier1-opmatrix`). Skip with
# --no-op-matrix.
#
# The `serve` labeled suite (the tier1-serving preset) then runs alone:
# the serving-layer tests — batch bit-identity across the op x dtype
# matrix, admission backpressure, shard failover, and drain-on-stop.
# Also part of the plain suite; the dedicated pass pins the label wiring
# (`ctest --preset tier1-serving`). Skip with --no-serving.
#
# The `resilience` labeled suite (the tier1-resilience preset) runs next:
# the chaos acceptance matrix (every ChaosKind x coalesced/direct x
# op/dtype, zero wrong answers), the circuit-breaker lifecycle, the
# retry/backoff client, and the deadline/batch race. Also part of the
# plain suite (and of the serve pass — it carries both labels); the
# dedicated pass pins the label wiring (`ctest --preset
# tier1-resilience`). Skip with --no-chaos.
#
# The `persistent-cache-pack` labeled suite (the tier1-cache preset)
# runs last: the two-tier VariantCache disk reuse matrix, artifact
# corruption/integrity handling, and tuned-pack export/import round
# trips. Also part of the plain suite; the dedicated pass pins the label
# wiring (`ctest --preset tier1-cache`). Skip with --no-cache.
#
#   tools/run_tier1.sh                        # RelWithDebInfo tier-1 gate
#   tools/run_tier1.sh --preset asan-ubsan    # same suite under ASan+UBSan
#   tools/run_tier1.sh --preset tier1-native  # native-backend suite only
#   tools/run_tier1.sh --preset tier1-serving # serving suite only
#   tools/run_tier1.sh asan-ubsan             # legacy positional spelling
#
# `tier1-native` reuses the tier1 build and runs only the `native`
# labeled suite — the native-CPU-backend differential tests that check
# the vectorized host engine against the simulator oracle.
set -eu

PRESET="tier1"
VERIFY_EACH=1
OP_MATRIX=1
SERVING=1
CHAOS=1
CACHE=1
while [ $# -gt 0 ]; do
  case "$1" in
    --preset)
      [ $# -ge 2 ] || { echo "run_tier1.sh: --preset needs a value" >&2; exit 2; }
      PRESET="$2"; shift 2 ;;
    --preset=*)
      PRESET="${1#--preset=}"; shift ;;
    --no-verify-each)
      VERIFY_EACH=0; shift ;;
    --no-op-matrix)
      OP_MATRIX=0; shift ;;
    --no-serving)
      SERVING=0; shift ;;
    --no-chaos)
      CHAOS=0; shift ;;
    --no-cache)
      CACHE=0; shift ;;
    -h|--help)
      sed -n '2,14p' "$0"; exit 0 ;;
    -*)
      echo "run_tier1.sh: unknown option '$1'" >&2; exit 2 ;;
    *)
      PRESET="$1"; shift ;;
  esac
done
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

if command -v cmake >/dev/null 2>&1 && cmake --list-presets >/dev/null 2>&1; then
  # Label-filter test presets (tier1-native, tier1-opmatrix) share the
  # tier1 build tree; everything else builds under its own preset name.
  case "$PRESET" in
    tier1-*) BUILD_PRESET="tier1" ;;
    *) BUILD_PRESET="$PRESET" ;;
  esac
  cmake --preset "$BUILD_PRESET"
  cmake --build --preset "$BUILD_PRESET" -j "$(nproc 2>/dev/null || echo 2)"
  ctest --preset "$PRESET"
  if [ "$VERIFY_EACH" = 1 ] && [ "$PRESET" = tier1 ]; then
    echo "== tier-1 again with per-pass IR verification (TGR_VERIFY_EACH=1) =="
    ctest --preset tier1-verify-each
  fi
  if [ "$OP_MATRIX" = 1 ] && [ "$PRESET" = tier1 ]; then
    echo "== op-matrix sweep under per-pass verification (label: op-matrix) =="
    ctest --preset tier1-opmatrix
  fi
  if [ "$SERVING" = 1 ] && [ "$PRESET" = tier1 ]; then
    echo "== serving-layer suite (label: serve) =="
    ctest --preset tier1-serving
  fi
  if [ "$CHAOS" = 1 ] && [ "$PRESET" = tier1 ]; then
    echo "== resilience/chaos suite (label: resilience) =="
    ctest --preset tier1-resilience
  fi
  if [ "$CACHE" = 1 ] && [ "$PRESET" = tier1 ]; then
    echo "== persistent-cache/pack suite (label: persistent-cache) =="
    ctest --preset tier1-cache
  fi
else
  # CMake < 3.21: no preset support; fall back to the plain tier-1 build.
  cmake -B build -S .
  cmake --build build -j "$(nproc 2>/dev/null || echo 2)"
  ctest --test-dir build --output-on-failure -j 4
  if [ "$VERIFY_EACH" = 1 ]; then
    echo "== tier-1 again with per-pass IR verification (TGR_VERIFY_EACH=1) =="
    TGR_VERIFY_EACH=1 ctest --test-dir build --output-on-failure -j 4
  fi
  if [ "$OP_MATRIX" = 1 ]; then
    echo "== op-matrix sweep under per-pass verification (label: op-matrix) =="
    TGR_VERIFY_EACH=1 ctest --test-dir build -L op-matrix --output-on-failure -j 4
  fi
  if [ "$SERVING" = 1 ]; then
    echo "== serving-layer suite (label: serve) =="
    ctest --test-dir build -L serve --output-on-failure -j 4
  fi
  if [ "$CHAOS" = 1 ]; then
    echo "== resilience/chaos suite (label: resilience) =="
    ctest --test-dir build -L resilience --output-on-failure -j 4
  fi
  if [ "$CACHE" = 1 ]; then
    echo "== persistent-cache/pack suite (label: persistent-cache) =="
    ctest --test-dir build -L persistent-cache --output-on-failure -j 4
  fi
fi
