#!/usr/bin/env sh
# Tier-1 gate: configure, build, and run the full test suite exactly the
# way CI does. Run from anywhere; exits nonzero on the first failure.
#
#   tools/run_tier1.sh                     # RelWithDebInfo tier-1 gate
#   tools/run_tier1.sh --preset asan-ubsan # same suite under ASan+UBSan
#   tools/run_tier1.sh asan-ubsan          # legacy positional spelling
set -eu

PRESET="tier1"
while [ $# -gt 0 ]; do
  case "$1" in
    --preset)
      [ $# -ge 2 ] || { echo "run_tier1.sh: --preset needs a value" >&2; exit 2; }
      PRESET="$2"; shift 2 ;;
    --preset=*)
      PRESET="${1#--preset=}"; shift ;;
    -h|--help)
      sed -n '2,8p' "$0"; exit 0 ;;
    -*)
      echo "run_tier1.sh: unknown option '$1'" >&2; exit 2 ;;
    *)
      PRESET="$1"; shift ;;
  esac
done
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

if command -v cmake >/dev/null 2>&1 && cmake --list-presets >/dev/null 2>&1; then
  cmake --preset "$PRESET"
  cmake --build --preset "$PRESET" -j "$(nproc 2>/dev/null || echo 2)"
  ctest --preset "$PRESET"
else
  # CMake < 3.21: no preset support; fall back to the plain tier-1 build.
  cmake -B build -S .
  cmake --build build -j "$(nproc 2>/dev/null || echo 2)"
  ctest --test-dir build --output-on-failure -j 4
fi
