//===- tgrc.cpp - Tangram compiler driver --------------------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// Command-line driver for the Tangram reduction compiler:
//
//   tgrc <subcommand> [options] [args]
//
// Subcommands:
//   list                         enumerated search space (default)
//   emit NAME [--bytecode]       CUDA C (or SIMT bytecode) for one variant
//   tune NAME [--arch=A --n=N]   pick tunables by sampled simulation
//        [--export=PACK]         bundle the winners (+ quarantine records)
//        [--import=PACK]         warm-start from a previous export
//        [--cache-dir=DIR]       persistent two-tier variant cache
//   best [--arch=A --n=N]        fastest tuned variant per architecture
//   racecheck [NAME|all]         dynamic race detector over the variant(s)
//   faultcheck [NAME|all]        fault-injection matrix over the variant(s)
//   check FILE [--dump-ast] [--dump-passes]
//                                front-end check a user codelet source
//   check NAME|all               functional validation of the variant(s)
//   serve [--jobs=J --batch=K --no-coalesce --backend=sim|native]
//         [--chaos=KIND --seed=S --period=P] [--health]
//         [--cache-dir=DIR --import=PACK]
//                                batched serving demo over ReductionService
//                                (jobs flow through the retry/backoff
//                                client; --chaos injects a deterministic
//                                failure campaign, --health prints the
//                                breaker/degradation report plus the
//                                two-tier cache counters; --cache-dir /
//                                --import open the shards with hot lanes)
//
// racecheck, faultcheck, and variant-shaped check are all spellings of one
// engine entry point: engine::diagnose(DiagnoseRequest) with the matching
// DiagnoseKind (Race / Fault / Validate).
//
// Shared options:
//   --op=add|sub|max|min|argmax|argmin|any
//                          reduction operator (canonical source only)
//   --type=f32|i32|i64|f64 element type (legacy float|int accepted)
//   --arch=kepler|maxwell|pascal|all   target architecture(s)
//   --n=SIZE               problem size (elements)
//   --backend=sim|native   clock used by tune/best: the simulator's cycle
//                          model (default) or the native CPU engine's
//                          host wall-clock
//   --fault=KIND|all       fault kind(s) injected by faultcheck
//   --seed=S --period=P    fault-injection determinism knobs
//   --dump-ast             normalized source after parse+sema
//   --dump-passes          per-codelet transform-pipeline findings
//   --time-passes          per-pass wall-clock timing table at exit
//   --stats                pass statistics counters at exit
//   --print-after-all      dump the unit after every pipeline pass
//   --verify-each          run the IR verifier after every lowering pass
//
// Legacy spellings remain accepted: --list-variants, --emit-cuda=NAME,
// --emit-bytecode=NAME, --racecheck[=NAME], and a bare FILE argument
// (routed to `check`).
//
//===----------------------------------------------------------------------===//

#include "codegen/CudaEmitter.h"
#include "engine/ExecutionEngine.h"
#include "engine/TunedPack.h"
#include "lang/ASTPrinter.h"
#include "lang/Parser.h"
#include "reduce/OpDef.h"
#include "sema/Sema.h"
#include "serve/ReductionService.h"
#include "serve/ResilientClient.h"
#include "support/Statistics.h"
#include "synth/ReductionSpectrum.h"
#include "tangram/Tangram.h"
#include "transforms/Pipeline.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

using namespace tangram;
using namespace tangram::synth;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: tgrc <list|emit|tune|best|racecheck|check> [options] [args]\n"
      "  tgrc list\n"
      "  tgrc emit NAME [--bytecode]\n"
      "  tgrc tune NAME [--arch=kepler|maxwell|pascal|all] [--n=SIZE]\n"
      "                 [--backend=sim|native] [--cache-dir=DIR]\n"
      "                 [--export=PACK] [--import=PACK]\n"
      "  tgrc best [--arch=...] [--n=SIZE] [--backend=sim|native]\n"
      "  tgrc racecheck [NAME|all] [--arch=...] [--n=SIZE]\n"
      "  tgrc faultcheck [NAME|all] [--arch=...] [--n=SIZE]\n"
      "                  [--fault=bitflip-shared|bitflip-global|drop-atomic|\n"
      "                   dup-atomic|stuck-warp|skip-barrier|all]\n"
      "                  [--seed=S] [--period=P]\n"
      "  tgrc tune FILE.tgr [--arch=...] [--n=SIZE]\n"
      "  tgrc check FILE [--dump-ast] [--dump-passes]\n"
      "  tgrc check NAME|all [--arch=...] [--n=SIZE] [--backend=sim|native]\n"
      "  tgrc serve [--jobs=J] [--batch=K] [--no-coalesce] [--n=SIZE]\n"
      "             [--arch=...] [--backend=sim|native] [--health]\n"
      "             [--cache-dir=DIR] [--import=PACK]\n"
      "             [--chaos=compile-fail|slow-worker|spurious-reject|\n"
      "              quarantine-storm|queue-delay] [--seed=S] [--period=P]\n"
      "shared options: --op=add|sub|max|min|argmax|argmin|any\n"
      "                --type=f32|i32|i64|f64 (legacy: float|int)\n"
      "                --time-passes --stats --print-after-all "
      "--verify-each\n");
  return 2;
}

/// Options shared by every subcommand, parsed once up front.
struct DriverOptions {
  TangramReduction::Options Create;
  std::vector<sim::ArchDesc> Archs; ///< Resolved --arch set.
  size_t N = 1 << 20;
  /// Faultcheck knobs: the kinds to inject ("all" = the whole taxonomy)
  /// and the deterministic plan seed/period shared by every run.
  std::string FaultKinds = "all";
  uint64_t FaultSeed = 1;
  uint64_t FaultPeriod = 4;
  bool Bytecode = false;
  bool DumpAst = false;
  bool DumpPasses = false;
  /// Serve knobs: synthetic jobs submitted, coalescing cap, master switch.
  size_t ServeJobs = 512;
  size_t ServeBatch = 256;
  bool ServeCoalesce = true;
  /// Serve resilience knobs: the chaos campaign to inject ("" = none;
  /// --seed/--period are shared with the fault flags) and the --health
  /// report toggle.
  std::string ServeChaos;
  bool ServeHealth = false;
  /// Persistent-cache knobs, shared by tune and serve: --cache-dir=DIR
  /// attaches the two-tier variant cache's disk tier, --import=PACK
  /// warm-starts from tuned-variant packs (repeatable), and tune's
  /// --export=PACK bundles the sweep's winners into one.
  std::string CacheDir;
  std::string PackExport;
  std::vector<std::string> PackImports;
  std::vector<std::string> Positional;

  // Legacy flag spellings, mapped onto subcommands in main().
  std::string LegacyEmitCuda, LegacyEmitBytecode, LegacyRaceCheck;
  bool LegacyList = false;
};

bool parseArchSet(const std::string &Name, std::vector<sim::ArchDesc> &Out) {
  if (Name == "kepler")
    Out = {sim::getKeplerK40c()};
  else if (Name == "maxwell")
    Out = {sim::getMaxwellGTX980()};
  else if (Name == "pascal")
    Out = {sim::getPascalP100()};
  else if (Name == "all") {
    unsigned Count = 0;
    const sim::ArchDesc *All = sim::getAllArchs(Count);
    Out.assign(All, All + Count);
  } else
    return false;
  return true;
}

/// Parses every flag into \p O; non-flag arguments land in O.Positional in
/// order. Returns false on an unknown or malformed flag.
bool parseOptions(int Argc, char **Argv, DriverOptions &O) {
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (!std::strcmp(Arg, "--dump-ast"))
      O.DumpAst = true;
    else if (!std::strcmp(Arg, "--dump-passes"))
      O.DumpPasses = true;
    else if (!std::strcmp(Arg, "--time-passes"))
      O.Create.PM.TimePasses = true;
    else if (!std::strcmp(Arg, "--stats"))
      O.Create.PM.Stats = true;
    else if (!std::strcmp(Arg, "--print-after-all"))
      O.Create.PM.PrintAfterAll = true;
    else if (!std::strcmp(Arg, "--verify-each"))
      O.Create.PM.VerifyEach = true;
    else if (!std::strcmp(Arg, "--bytecode"))
      O.Bytecode = true;
    else if (!std::strcmp(Arg, "--list-variants"))
      O.LegacyList = true;
    else if (!std::strncmp(Arg, "--emit-cuda=", 12))
      O.LegacyEmitCuda = Arg + 12;
    else if (!std::strncmp(Arg, "--emit-bytecode=", 16))
      O.LegacyEmitBytecode = Arg + 16;
    else if (!std::strcmp(Arg, "--racecheck"))
      O.LegacyRaceCheck = "all";
    else if (!std::strncmp(Arg, "--racecheck=", 12))
      O.LegacyRaceCheck = Arg + 12;
    else if (!std::strncmp(Arg, "--arch=", 7)) {
      if (!parseArchSet(Arg + 7, O.Archs))
        return false;
    } else if (!std::strncmp(Arg, "--n=", 4)) {
      char *End = nullptr;
      unsigned long long V = std::strtoull(Arg + 4, &End, 10);
      if (!End || *End || V == 0)
        return false;
      O.N = static_cast<size_t>(V);
    } else if (!std::strncmp(Arg, "--jobs=", 7)) {
      char *End = nullptr;
      unsigned long long V = std::strtoull(Arg + 7, &End, 10);
      if (!End || *End || V == 0)
        return false;
      O.ServeJobs = static_cast<size_t>(V);
    } else if (!std::strncmp(Arg, "--batch=", 8)) {
      char *End = nullptr;
      unsigned long long V = std::strtoull(Arg + 8, &End, 10);
      if (!End || *End || V == 0)
        return false;
      O.ServeBatch = static_cast<size_t>(V);
    } else if (!std::strcmp(Arg, "--no-coalesce")) {
      O.ServeCoalesce = false;
    } else if (!std::strncmp(Arg, "--chaos=", 8)) {
      serve::ChaosKind K;
      if (!serve::parseChaosKind(Arg + 8, K) ||
          K == serve::ChaosKind::None)
        return false;
      O.ServeChaos = Arg + 8;
    } else if (!std::strcmp(Arg, "--health")) {
      O.ServeHealth = true;
    } else if (!std::strncmp(Arg, "--cache-dir=", 12)) {
      if (!Arg[12])
        return false;
      O.CacheDir = Arg + 12;
    } else if (!std::strncmp(Arg, "--export=", 9)) {
      if (!Arg[9])
        return false;
      O.PackExport = Arg + 9;
    } else if (!std::strncmp(Arg, "--import=", 9)) {
      if (!Arg[9])
        return false;
      O.PackImports.push_back(Arg + 9);
    } else if (!std::strncmp(Arg, "--fault=", 8)) {
      sim::FaultKind K;
      std::string Name = Arg + 8;
      if (Name != "all" && (!sim::parseFaultKind(Name, K) ||
                            K == sim::FaultKind::None))
        return false;
      O.FaultKinds = Name;
    } else if (!std::strncmp(Arg, "--seed=", 7)) {
      char *End = nullptr;
      unsigned long long V = std::strtoull(Arg + 7, &End, 10);
      if (!End || *End)
        return false;
      O.FaultSeed = V;
    } else if (!std::strncmp(Arg, "--period=", 9)) {
      char *End = nullptr;
      unsigned long long V = std::strtoull(Arg + 9, &End, 10);
      if (!End || *End || V == 0)
        return false;
      O.FaultPeriod = V;
    } else if (!std::strncmp(Arg, "--backend=", 10)) {
      std::string B = Arg + 10;
      if (B == "sim" || B == "simulator")
        O.Create.TimingBackend = engine::Backend::Simulator;
      else if (B == "native")
        O.Create.TimingBackend = engine::Backend::NativeCpu;
      else
        return false;
    } else if (!std::strncmp(Arg, "--op=", 5)) {
      // The whole reduce::OpDef spectrum, not just the arithmetic four.
      if (!parseReduceOp(Arg + 5, O.Create.Op))
        return false;
    } else if (!std::strncmp(Arg, "--type=", 7)) {
      std::string Ty = Arg + 7;
      // Legacy spellings stay accepted alongside the OpDef table's
      // f32/i32/i64/f64 names.
      if (Ty == "float")
        Ty = "f32";
      else if (Ty == "int")
        Ty = "i32";
      if (!reduce::parseScalarType(Ty, O.Create.Elem))
        return false;
    } else if (Arg[0] == '-')
      return false;
    else
      O.Positional.push_back(Arg);
  }
  // Arch defaults are per-command (tune/best sweep all three) and are
  // resolved in main() once the subcommand is known.
  return true;
}

/// The `--time-passes` / `--stats` / `--print-after-all` epilogue, shared
/// by every subcommand that compiled the spectrum.
void printObservability(const TangramReduction &TR) {
  const pm::InstrumentationOptions &PMO = TR.getOptions().PM;
  pm::PassInstrumentation &PI = TR.getInstrumentation();
  if (PMO.PrintAfterAll)
    std::printf("%s", PI.getDumpText().c_str());
  if (PMO.TimePasses)
    std::printf("%s", PI.renderTimingTable().c_str());
  if (PMO.Stats)
    std::printf("%s", support::Statistics::get().report().c_str());
}

const VariantDescriptor *findVariant(const SearchSpace &Space,
                                     const std::string &Name) {
  if (const VariantDescriptor *V = findByFigure6Label(Space, Name))
    return V;
  for (const VariantDescriptor &V : Space.Pruned)
    if (V.getName() == Name)
      return &V;
  return nullptr;
}

/// Compiles the canonical spectrum (or an error exit). Shared by every
/// subcommand that needs the facade.
std::unique_ptr<TangramReduction> compileSpectrum(const DriverOptions &O) {
  auto TR = TangramReduction::create(O.Create);
  if (!TR) {
    std::fprintf(stderr, "tgrc: %s\n", TR.status().toString().c_str());
    return nullptr;
  }
  return std::move(*TR);
}

// --- check ---------------------------------------------------------------

/// Checks a user-supplied source file: parse, sema, pass pipeline; prints
/// what was requested. (Variant synthesis requires the canonical spectrum
/// shape and stays on the built-in path.)
int cmdCheck(const DriverOptions &O, const std::string &Path) {
  std::ifstream File(Path);
  if (!File) {
    std::fprintf(stderr, "tgrc: cannot open '%s'\n", Path.c_str());
    return 1;
  }
  std::stringstream Text;
  Text << File.rdbuf();

  SourceManager SM(Path, Text.str());
  DiagnosticEngine Diags(SM);
  lang::ASTContext Ctx;
  lang::Parser P(SM, Ctx, Diags);
  lang::TranslationUnit TU = P.parseTranslationUnit();
  if (!Diags.hasErrors()) {
    sema::Sema S(Ctx, Diags);
    S.analyze(TU);
  }
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.renderAll().c_str());
    return 1;
  }
  std::printf("%zu codelet(s) checked\n", TU.Codelets.size());
  for (const lang::CodeletDecl *C : TU.Codelets)
    std::printf("  %-12s %-12s %s\n", C->getName().c_str(),
                C->getTag().empty() ? "-" : C->getTag().c_str(),
                lang::getCodeletClassName(C->getCodeletClass()));
  if (O.DumpAst)
    std::printf("\n%s", lang::printTranslationUnit(TU).c_str());
  pm::PassInstrumentation PI(O.Create.PM);
  bool WantPipeline = O.DumpPasses || O.Create.PM.TimePasses ||
                      O.Create.PM.Stats;
  if (WantPipeline) {
    auto Infos = transforms::runTransformPipeline(TU, &PI);
    if (!O.DumpPasses)
      Infos.clear();
    for (const auto &[C, Info] : Infos) {
      std::printf("\n%s (%s):\n", C->getName().c_str(), C->getTag().c_str());
      if (Info.GlobalAtomic)
        std::printf("  Map atomic API: atomic%s%s\n",
                    getReduceOpName(Info.GlobalAtomic->Op),
                    Info.GlobalAtomic->SameComputation
                        ? " (subsumes the spectrum call)"
                        : "");
      for (const auto &W : Info.SharedAtomics.Writes)
        std::printf("  shared-atomic write on '%s' (atomic%s)\n",
                    W.Var->getName().c_str(), getReduceOpName(W.Op));
      for (const auto &Op : Info.Shuffles)
        std::printf("  shuffle loop over '%s' (%s, array %s)\n",
                    Op.Array->getName().c_str(),
                    Op.Direction == ir::ShuffleMode::Down ? "shfl_down"
                                                          : "shfl_up",
                    Op.ElideArray ? "elided" : "kept");
    }
  }
  if (O.Create.PM.TimePasses)
    std::printf("%s", PI.renderTimingTable().c_str());
  if (O.Create.PM.Stats)
    std::printf("%s", support::Statistics::get().report().c_str());
  return 0;
}

// --- list ----------------------------------------------------------------

int cmdList(const DriverOptions &O) {
  auto TR = compileSpectrum(O);
  if (!TR)
    return 1;
  if (O.DumpAst) {
    std::printf("%s", lang::printTranslationUnit(TR->getUnit()).c_str());
    return 0;
  }
  if (O.DumpPasses) {
    auto Infos = transforms::runTransformPipeline(TR->getUnit());
    for (const auto &[C, Info] : Infos)
      std::printf("%s (%s): %zu shared-atomic write(s), %zu shuffle "
                  "opportunit(ies)%s\n",
                  C->getName().c_str(), C->getTag().c_str(),
                  Info.SharedAtomics.Writes.size(), Info.Shuffles.size(),
                  Info.GlobalAtomic ? ", Map atomic API" : "");
    return 0;
  }
  const SearchSpace &Space = TR->getSearchSpace();
  // Axis provenance includes the reduction axis itself: every variant of
  // this spectrum lowers the same (op, dtype) point.
  const char *OpSpelling = getReduceOpSpelling(O.Create.Op);
  const char *DtypeSpelling = reduce::getScalarTypeSpelling(O.Create.Elem);
  std::printf("%zu versions enumerated, %zu after pruning (op=%s "
              "dtype=%s):\n",
              Space.All.size(), Space.Pruned.size(), OpSpelling,
              DtypeSpelling);
  for (const VariantDescriptor &V : Space.Pruned) {
    std::string L = V.getFigure6Label();
    // Axis provenance: which Section III rewrites produced this variant,
    // and how many variant axes its cooperative codelet contributes.
    bool GlobalAtomic = V.GridScheme == GridCombine::GlobalAtomic;
    bool Shuffle = V.Coop == CoopKind::TreeShuffle ||
                   V.Coop == CoopKind::SharedV2Shuffle;
    const char *SharedCodelet = "-";
    const char *CoopTag = nullptr;
    switch (V.Coop) {
    case CoopKind::Tree:
    case CoopKind::TreeShuffle:
      CoopTag = tags::CoopTree;
      break;
    case CoopKind::SharedV1:
      CoopTag = tags::SharedV1;
      SharedCodelet = "v1";
      break;
    case CoopKind::SharedV2:
    case CoopKind::SharedV2Shuffle:
      CoopTag = tags::SharedV2;
      SharedCodelet = "v2";
      break;
    case CoopKind::SerialThread0:
      break;
    }
    unsigned Axes = 0;
    if (CoopTag) {
      if (const lang::CodeletDecl *C = TR->getUnit().findByTag(CoopTag)) {
        auto It = TR->getTransformInfos().find(C);
        if (It != TR->getTransformInfos().end())
          Axes = It->second.variantAxisCount();
      }
    }
    std::printf("  %-4s %-20s %-14s op=%s dtype=%s global-atomic=%c "
                "shuffle=%c shared-atomic=%-2s axes=%u\n",
                L.empty() ? "" : ("(" + L + ")").c_str(),
                V.getName().c_str(),
                getVariantCategoryName(V.getCategory()), OpSpelling,
                DtypeSpelling, GlobalAtomic ? '+' : '-', Shuffle ? '+' : '-',
                SharedCodelet, Axes);
  }
  printObservability(*TR);
  return 0;
}

// --- emit ----------------------------------------------------------------

int cmdEmit(const DriverOptions &O, const std::string &Name) {
  auto TR = compileSpectrum(O);
  if (!TR)
    return 1;
  const VariantDescriptor *V = findVariant(TR->getSearchSpace(), Name);
  if (!V) {
    std::fprintf(stderr, "tgrc: unknown variant '%s'\n", Name.c_str());
    return 1;
  }
  if (O.Bytecode) {
    auto S = TR->synthesize(*V);
    if (!S) {
      std::fprintf(stderr, "tgrc: %s\n", S.status().toString().c_str());
      return 1;
    }
    std::printf("%s", (*S)->Compiled.disassemble().c_str());
    printObservability(*TR);
    return 0;
  }
  auto Cuda = TR->emitCudaFor(*V);
  if (!Cuda) {
    std::fprintf(stderr, "tgrc: %s\n", Cuda.status().toString().c_str());
    return 1;
  }
  std::printf("%s", Cuda->c_str());
  printObservability(*TR);
  return 0;
}

// --- tune ----------------------------------------------------------------

/// Writes the accumulated pack when `--export=PACK` was given; returns the
/// exit code for cmdTune's tail (the write is atomic: temp + rename).
int writePackIfRequested(const DriverOptions &O,
                         const engine::TunedPack &Pack) {
  if (O.PackExport.empty())
    return 0;
  support::Status S = engine::writeTunedPack(O.PackExport, Pack);
  if (!S.ok()) {
    std::fprintf(stderr, "tgrc: %s\n", S.toString().c_str());
    return 1;
  }
  std::printf("exported %zu tuned variant(s), %zu quarantine record(s) "
              "-> %s\n",
              Pack.Entries.size(), Pack.Quarantined.size(),
              O.PackExport.c_str());
  return 0;
}

/// Appends one tuned winner (and the engine's accumulated quarantine
/// records) to \p Pack. Returns false (with a diagnostic) when the variant
/// cannot be resolved or serialized.
bool exportTunedEntry(const TangramReduction &TR, const sim::ArchDesc &Arch,
                      const VariantDescriptor &Tuned, double Seconds,
                      engine::TunedPack &Pack) {
  engine::ExecutionEngine &E = TR.engineFor(Arch);
  auto Entry = E.exportTunedVariant(Tuned, TR.getOptions().TimingBackend,
                                    Seconds);
  if (!Entry) {
    std::fprintf(stderr, "tgrc: cannot export tuned variant for %s: %s\n",
                 Arch.Name.c_str(), Entry.status().toString().c_str());
    return false;
  }
  Pack.Entries.push_back(std::move(*Entry));
  // Ship the bad news with the good: importers of this generation
  // pre-quarantine what the sweep saw trap or misbehave.
  for (const engine::QuarantineRecord &Q : E.getQuarantineRecords())
    Pack.Quarantined.push_back({Arch.Gen, Q.Desc, Q.Why});
  return true;
}

/// Prints any warm-start warnings the per-arch engines collected from
/// `--import=PACK` (an unreadable pack degrades to a cold start).
void printStartupWarnings(const TangramReduction &TR,
                          const sim::ArchDesc &Arch) {
  for (const support::Status &W : TR.engineFor(Arch).getStartupWarnings())
    std::fprintf(stderr, "tgrc: warning: %s\n", W.toString().c_str());
}

int cmdTune(const DriverOptions &Opts, const std::string &Name) {
  DriverOptions O = Opts;
  // Persistent tier + warm start: every lazily-created per-arch engine
  // shares one cache; the first attaches the disk tier and imports packs.
  O.Create.Engine.CachePath = O.CacheDir;
  O.Create.Engine.ImportPacks = O.PackImports;
  // `tune FILE.tgr` compiles that source instead of the canonical
  // spectrum and tunes its whole variant portfolio per architecture.
  bool IsFile =
      Name.size() > 4 && Name.compare(Name.size() - 4, 4, ".tgr") == 0;
  if (IsFile) {
    std::ifstream File(Name);
    if (!File) {
      std::fprintf(stderr, "tgrc: cannot open '%s'\n", Name.c_str());
      return 1;
    }
    std::stringstream Text;
    Text << File.rdbuf();
    O.Create.SourceOverride = Text.str();
  }
  auto TR = compileSpectrum(O);
  if (!TR)
    return 1;
  // Tuned-point provenance: a tuned configuration is only comparable
  // within its (op, dtype) spectrum, so both spellings ride along.
  const char *OpSpelling = getReduceOpSpelling(TR->getOptions().Op);
  const char *DtypeSpelling =
      reduce::getScalarTypeSpelling(TR->getOptions().Elem);
  // Native wall-clock and simulator-modeled microseconds must never be
  // conflated in logs, so the backend tags every tuned line.
  const char *BackendTag =
      engine::getBackendName(TR->getOptions().TimingBackend);
  engine::TunedPack Pack;
  if (IsFile) {
    for (const sim::ArchDesc &Arch : O.Archs) {
      printStartupWarnings(*TR, Arch);
      TangramReduction::BestResult Best = TR->findBest(Arch, O.N);
      std::printf("%-10s n=%zu op=%s dtype=%s backend=%s  %-4s %-20s "
                  "block=%u coarsen=%u  %.3f us\n",
                  Arch.Name.c_str(), O.N, OpSpelling, DtypeSpelling,
                  BackendTag,
                  Best.Fig6Label.empty() ? "-" : Best.Fig6Label.c_str(),
                  Best.Desc.getName().c_str(), Best.Desc.BlockSize,
                  Best.Desc.Coarsen, Best.Seconds * 1e6);
      // An architecture whose whole portfolio was quarantined has no
      // winner to bundle; its quarantine records still aren't lost (the
      // surviving architectures' exports carry only their own).
      if (!O.PackExport.empty() &&
          Best.Seconds < std::numeric_limits<double>::infinity() &&
          !exportTunedEntry(*TR, Arch, Best.Desc, Best.Seconds, Pack))
        return 1;
    }
    printObservability(*TR);
    return writePackIfRequested(O, Pack);
  }
  const VariantDescriptor *V = findVariant(TR->getSearchSpace(), Name);
  if (!V) {
    std::fprintf(stderr, "tgrc: unknown variant '%s'\n", Name.c_str());
    return 1;
  }
  for (const sim::ArchDesc &Arch : O.Archs) {
    printStartupWarnings(*TR, Arch);
    VariantDescriptor Tuned = TR->tune(*V, Arch, O.N);
    double Seconds = TR->timeVariant(Tuned, Arch, O.N);
    std::printf("%-10s n=%zu op=%s dtype=%s backend=%s  block=%u "
                "coarsen=%u  %.3f us\n",
                Arch.Name.c_str(), O.N, OpSpelling, DtypeSpelling,
                BackendTag, Tuned.BlockSize, Tuned.Coarsen, Seconds * 1e6);
    if (!O.PackExport.empty() &&
        !exportTunedEntry(*TR, Arch, Tuned, Seconds, Pack))
      return 1;
  }
  printObservability(*TR);
  return writePackIfRequested(O, Pack);
}

// --- best ----------------------------------------------------------------

int cmdBest(const DriverOptions &O) {
  auto TR = compileSpectrum(O);
  if (!TR)
    return 1;
  for (const sim::ArchDesc &Arch : O.Archs) {
    TangramReduction::BestResult Best = TR->findBest(Arch, O.N);
    std::printf("%-10s n=%zu op=%s dtype=%s  %-4s %-20s block=%u "
                "coarsen=%u  %.3f us\n",
                Arch.Name.c_str(), O.N,
                getReduceOpSpelling(TR->getOptions().Op),
                reduce::getScalarTypeSpelling(TR->getOptions().Elem),
                Best.Fig6Label.empty() ? "-" : Best.Fig6Label.c_str(),
                Best.Desc.getName().c_str(), Best.Desc.BlockSize,
                Best.Desc.Coarsen, Best.Seconds * 1e6);
  }
  printObservability(*TR);
  return 0;
}

// --- racecheck -----------------------------------------------------------

int raceCheckOne(const TangramReduction &TR, const VariantDescriptor &V,
                 const sim::ArchDesc &Arch, size_t N, unsigned &Races) {
  engine::DiagnoseRequest Req;
  Req.Kind = engine::DiagnoseKind::Race;
  Req.Desc = V;
  Req.N = N;
  auto Report = TR.diagnose(Arch, Req);
  if (!Report) {
    std::fprintf(stderr, "tgrc: %s: %s\n", V.getName().c_str(),
                 Report.status().toString().c_str());
    return 1;
  }
  const engine::RaceReport &Race = Report->Race;
  std::printf("%-10s %-20s launches=%u  %s\n", Arch.Name.c_str(),
              V.getName().c_str(), Race.LaunchCount,
              Race.clean()
                  ? "clean"
                  : (std::to_string(Race.Conflicts) + " conflict(s), " +
                     std::to_string(Race.Diagnostics.size()) +
                     " distinct race(s)")
                        .c_str());
  for (const sim::RaceDiagnostic &D : Race.Diagnostics)
    std::printf("    %s\n", TR.renderRace(D).c_str());
  if (Race.Truncated)
    std::printf("    (address table overflowed; coverage is partial)\n");
  Races += static_cast<unsigned>(Race.Diagnostics.size());
  return 0;
}

int cmdRaceCheck(const DriverOptions &O, const std::string &Name) {
  auto TR = compileSpectrum(O);
  if (!TR)
    return 1;
  std::vector<const VariantDescriptor *> Targets;
  if (Name.empty() || Name == "all") {
    for (const VariantDescriptor &V : TR->getSearchSpace().Pruned)
      Targets.push_back(&V);
  } else {
    const VariantDescriptor *V = findVariant(TR->getSearchSpace(), Name);
    if (!V) {
      std::fprintf(stderr, "tgrc: unknown variant '%s'\n", Name.c_str());
      return 1;
    }
    Targets.push_back(V);
  }
  unsigned Races = 0;
  for (const sim::ArchDesc &Arch : O.Archs)
    for (const VariantDescriptor *V : Targets)
      if (int RC = raceCheckOne(*TR, *V, Arch, O.N, Races))
        return RC;
  std::printf("%zu variant(s) x %zu architecture(s): %u race(s)\n",
              Targets.size(), O.Archs.size(), Races);
  printObservability(*TR);
  return Races ? 1 : 0;
}

// --- faultcheck ----------------------------------------------------------

/// Runs one (variant, arch, fault-kind) cell of the fault matrix and prints
/// its structured outcome. Returns nonzero only when the harness itself
/// fails (e.g. the clean reference run traps) — a Detected or Trapped fault
/// is the framework *working*.
int faultCheckOne(const TangramReduction &TR, const VariantDescriptor &V,
                  const sim::ArchDesc &Arch, size_t N,
                  const sim::FaultPlan &Plan, unsigned Outcomes[4]) {
  engine::DiagnoseRequest Req;
  Req.Kind = engine::DiagnoseKind::Fault;
  Req.Desc = V;
  Req.N = N;
  Req.Plan = Plan;
  auto Report = TR.diagnose(Arch, Req);
  if (!Report) {
    std::fprintf(stderr, "tgrc: %s: %s\n", V.getName().c_str(),
                 Report.status().toString().c_str());
    return 1;
  }
  const engine::FaultReport &Fault = Report->Fault;
  ++Outcomes[static_cast<unsigned>(Fault.Outcome)];
  std::printf("%-10s %-20s %-14s injected=%-4llu %s", Arch.Name.c_str(),
              V.getName().c_str(), sim::getFaultKindName(Fault.Kind),
              static_cast<unsigned long long>(Fault.FaultsInjected),
              engine::getFaultOutcomeName(Fault.Outcome));
  if (Fault.Outcome == engine::FaultOutcome::Detected)
    std::printf("  (got %g expected %g)", Fault.GotFloat, Fault.RefFloat);
  else if (Fault.Outcome == engine::FaultOutcome::Trapped)
    std::printf("  (%s)", Fault.Trap.toString().c_str());
  std::printf("\n");
  return 0;
}

int cmdFaultCheck(const DriverOptions &O, const std::string &Name) {
  auto TR = compileSpectrum(O);
  if (!TR)
    return 1;
  std::vector<const VariantDescriptor *> Targets;
  if (Name.empty() || Name == "all") {
    for (const VariantDescriptor &V : TR->getSearchSpace().Pruned)
      Targets.push_back(&V);
  } else {
    const VariantDescriptor *V = findVariant(TR->getSearchSpace(), Name);
    if (!V) {
      std::fprintf(stderr, "tgrc: unknown variant '%s'\n", Name.c_str());
      return 1;
    }
    Targets.push_back(V);
  }

  std::vector<sim::FaultKind> Kinds;
  if (O.FaultKinds == "all") {
    unsigned Count = 0;
    const sim::FaultKind *All = sim::getAllFaultKinds(Count);
    Kinds.assign(All, All + Count);
  } else {
    sim::FaultKind K = sim::FaultKind::None;
    sim::parseFaultKind(O.FaultKinds, K); // validated during flag parsing
    Kinds.push_back(K);
  }

  unsigned Outcomes[4] = {0, 0, 0, 0};
  for (const sim::ArchDesc &Arch : O.Archs)
    for (const VariantDescriptor *V : Targets)
      for (sim::FaultKind K : Kinds) {
        sim::FaultPlan Plan;
        Plan.Kind = K;
        Plan.Seed = O.FaultSeed;
        Plan.Period = O.FaultPeriod;
        if (int RC = faultCheckOne(*TR, *V, Arch, O.N, Plan, Outcomes))
          return RC;
      }
  std::printf("%zu variant(s) x %zu architecture(s) x %zu fault kind(s): "
              "%u clean, %u survived, %u detected, %u trapped\n",
              Targets.size(), O.Archs.size(), Kinds.size(), Outcomes[0],
              Outcomes[1], Outcomes[2], Outcomes[3]);
  printObservability(*TR);
  return 0;
}

// --- check NAME (functional validation) ----------------------------------

int cmdCheckVariant(const DriverOptions &O, const std::string &Name) {
  auto TR = compileSpectrum(O);
  if (!TR)
    return 1;
  std::vector<const VariantDescriptor *> Targets;
  if (Name == "all") {
    for (const VariantDescriptor &V : TR->getSearchSpace().Pruned)
      Targets.push_back(&V);
  } else {
    const VariantDescriptor *V = findVariant(TR->getSearchSpace(), Name);
    if (!V) {
      std::fprintf(stderr, "tgrc: unknown variant '%s'\n", Name.c_str());
      return 1;
    }
    Targets.push_back(V);
  }
  unsigned Failures = 0;
  for (const sim::ArchDesc &Arch : O.Archs)
    for (const VariantDescriptor *V : Targets) {
      engine::DiagnoseRequest Req;
      Req.Kind = engine::DiagnoseKind::Validate;
      Req.Desc = *V;
      Req.N = O.N;
      Req.BackendKind = O.Create.TimingBackend;
      auto Report = TR->diagnose(Arch, Req);
      if (!Report) {
        std::fprintf(stderr, "tgrc: %s: %s\n", V->getName().c_str(),
                     Report.status().toString().c_str());
        return 1;
      }
      bool Pass = Report->passed();
      Failures += Pass ? 0 : 1;
      std::printf("%-10s %-20s n=%zu backend=%s  %s\n", Arch.Name.c_str(),
                  V->getName().c_str(), O.N,
                  engine::getBackendName(Req.BackendKind),
                  Pass ? "pass" : Report->Validation.toString().c_str());
    }
  std::printf("%zu variant(s) x %zu architecture(s): %u validation "
              "failure(s)\n",
              Targets.size(), O.Archs.size(), Failures);
  printObservability(*TR);
  return Failures ? 1 : 0;
}

// --- serve ---------------------------------------------------------------

/// Synthetic serving demo: submits --jobs small reductions through the
/// batching service (via the retry/backoff client, so an injected chaos
/// campaign is absorbed rather than fatal) and reports throughput, latency
/// percentiles, the coalescing counters, and — with --health — the
/// per-shard breaker/degradation report.
int cmdServe(const DriverOptions &O) {
  serve::ServiceOptions SO;
  SO.BackendKind = O.Create.TimingBackend;
  SO.Coalesce = O.ServeCoalesce;
  SO.MaxBatchJobs = O.ServeBatch;
  SO.QueueDepth = std::max<size_t>(O.ServeJobs, 1024);
  SO.Archs = O.Archs;
  // Warm start: with a populated --cache-dir (or an --import pack) the
  // shards open with hot lanes — first jobs deserialize artifacts instead
  // of paying single-flight compiles. --health shows the disk-tier split.
  SO.CachePath = O.CacheDir;
  SO.ImportPacks = O.PackImports;
  if (!O.ServeChaos.empty()) {
    serve::parseChaosKind(O.ServeChaos, SO.Chaos.Kind);
    SO.Chaos.Seed = O.FaultSeed;
    SO.Chaos.Period = O.FaultPeriod;
  }
  serve::ReductionService Svc(SO);
  serve::ResilientClient Client(Svc);

  const bool Float = ir::isFloatType(O.Create.Elem);
  // Per-job payload seed: submission is multi-threaded, so the data for
  // job J must not depend on submission order.
  auto MakeJob = [&](size_t J) {
    serve::JobSpec Job;
    Job.Op = O.Create.Op;
    Job.Elem = O.Create.Elem;
    Job.Gen = O.Archs.front().Gen;
    uint64_t Seed = 0x9e3779b97f4a7c15ull ^ (J * 0x2545f4914f6cdd1dull);
    for (size_t I = 0; I != O.N; ++I) {
      Seed = Seed * 6364136223846793005ull + 1442695040888963407ull;
      long long V = static_cast<long long>((Seed >> 33) % 2001) - 1000;
      if (Float)
        Job.FloatData.push_back(static_cast<double>(V) / 8.0);
      else
        Job.IntData.push_back(V);
    }
    return Job;
  };

  std::mutex OutMu;
  unsigned Failed = 0, Degraded = 0;
  std::vector<double> Latencies;
  Latencies.reserve(O.ServeJobs);
  std::atomic<size_t> NextJob{0};
  auto Submitter = [&] {
    for (size_t J = NextJob++; J < O.ServeJobs; J = NextJob++) {
      auto Out = Client.run(MakeJob(J));
      std::lock_guard<std::mutex> G(OutMu);
      if (!Out) {
        ++Failed;
        std::fprintf(stderr, "tgrc: job failed: %s\n",
                     Out.status().toString().c_str());
        continue;
      }
      Latencies.push_back(Out->LatencySeconds);
      Degraded += Out->Degraded ? 1 : 0;
    }
  };

  const double T0 = engine::steadySeconds();
  std::vector<std::thread> Submitters;
  const size_t NumSubmitters = std::min<size_t>(4, std::max<size_t>(
                                                       1, O.ServeJobs));
  for (size_t I = 0; I != NumSubmitters; ++I)
    Submitters.emplace_back(Submitter);
  for (std::thread &T : Submitters)
    T.join();
  const double Wall = engine::steadySeconds() - T0;
  serve::HealthReport Health = Svc.getHealth();
  Svc.stop();

  std::sort(Latencies.begin(), Latencies.end());
  serve::ServiceStats St = Svc.getStats();
  serve::ClientStats CS = Client.getStats();
  std::printf("serve: arch=%s backend=%s op=%s dtype=%s jobs=%zu n=%zu "
              "batch<=%zu coalesce=%s chaos=%s\n",
              O.Archs.front().Name.c_str(),
              engine::getBackendName(SO.BackendKind),
              getReduceOpSpelling(O.Create.Op),
              reduce::getScalarTypeSpelling(O.Create.Elem), O.ServeJobs, O.N,
              SO.MaxBatchJobs, SO.Coalesce ? "on" : "off",
              SO.Chaos.active() ? serve::getChaosKindName(SO.Chaos.Kind)
                                : "off");
  std::printf("  completed=%llu failed=%u batches=%llu coalesced=%llu "
              "direct=%llu degraded=%u\n",
              static_cast<unsigned long long>(St.Completed), Failed,
              static_cast<unsigned long long>(St.Batches),
              static_cast<unsigned long long>(St.CoalescedJobs),
              static_cast<unsigned long long>(St.DirectJobs), Degraded);
  std::printf("  rejected=%llu (overloaded=%llu unavailable=%llu) "
              "retries=%llu backoff=%.1fms chaos-fired=%llu\n",
              static_cast<unsigned long long>(St.rejected()),
              static_cast<unsigned long long>(St.RejectedOverloaded),
              static_cast<unsigned long long>(St.RejectedUnavailable),
              static_cast<unsigned long long>(CS.Retries),
              CS.BackoffSecondsTotal * 1e3,
              static_cast<unsigned long long>(St.ChaosInjected));
  std::printf("  wall=%.3fs throughput=%.0f jobs/s latency p50=%.3fms "
              "p95=%.3fms p99=%.3fms\n",
              Wall,
              Wall > 0 ? static_cast<double>(Latencies.size()) / Wall : 0.0,
              serve::percentileSorted(Latencies, 0.50) * 1e3,
              serve::percentileSorted(Latencies, 0.95) * 1e3,
              serve::percentileSorted(Latencies, 0.99) * 1e3);
  if (O.ServeHealth)
    std::printf("%s", Health.renderText().c_str());
  return Failed ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  DriverOptions O;
  // RaceCheck sweeps stay tractable at the default problem size.
  bool SawN = false;
  for (int I = 1; I < Argc; ++I)
    if (!std::strncmp(Argv[I], "--n=", 4))
      SawN = true;
  if (!parseOptions(Argc, Argv, O))
    return usage();

  std::string Cmd;
  if (!O.Positional.empty()) {
    const std::string &First = O.Positional.front();
    if (First == "list" || First == "emit" || First == "tune" ||
        First == "best" || First == "racecheck" || First == "faultcheck" ||
        First == "check" || First == "serve") {
      Cmd = First;
      O.Positional.erase(O.Positional.begin());
    }
  }

  // Map legacy flag spellings onto subcommands.
  if (Cmd.empty()) {
    if (!O.LegacyEmitCuda.empty()) {
      Cmd = "emit";
      O.Positional = {O.LegacyEmitCuda};
    } else if (!O.LegacyEmitBytecode.empty()) {
      Cmd = "emit";
      O.Bytecode = true;
      O.Positional = {O.LegacyEmitBytecode};
    } else if (!O.LegacyRaceCheck.empty()) {
      Cmd = "racecheck";
      O.Positional = {O.LegacyRaceCheck};
    } else if (!O.Positional.empty()) {
      Cmd = "check"; // bare FILE argument
    } else {
      Cmd = "list"; // includes legacy --list-variants / dump flags
    }
  }

  // Default architectures: tune/best sweep all three generations (the
  // paper's portability claim is per-arch), everything else runs Pascal.
  if (O.Archs.empty())
    parseArchSet(Cmd == "tune" || Cmd == "best" ? "all" : "pascal", O.Archs);

  if (Cmd == "check") {
    if (O.Positional.size() != 1)
      return usage();
    const std::string &Target = O.Positional.front();
    // A .tgr path (or any existing file) goes through the front-end check;
    // anything else names a synthesized variant to validate functionally.
    const bool IsFile = Target.size() > 4 &&
                        Target.compare(Target.size() - 4, 4, ".tgr") == 0;
    if (IsFile || std::ifstream(Target).good())
      return cmdCheck(O, Target);
    if (!SawN)
      O.N = 1 << 11; // one functional run per arch x variant; keep it quick
    return cmdCheckVariant(O, Target);
  }
  if (!O.Positional.empty() && Cmd != "emit" && Cmd != "tune" &&
      Cmd != "racecheck" && Cmd != "faultcheck")
    return usage();

  if (Cmd == "list")
    return cmdList(O);
  if (Cmd == "emit")
    return O.Positional.size() == 1 ? cmdEmit(O, O.Positional.front())
                                    : usage();
  if (Cmd == "tune")
    return O.Positional.size() == 1 ? cmdTune(O, O.Positional.front())
                                    : usage();
  if (Cmd == "best")
    return cmdBest(O);
  if (Cmd == "racecheck") {
    if (O.Positional.size() > 1)
      return usage();
    if (!SawN)
      O.N = 1 << 14; // full-grid functional runs; keep the sweep quick
    return cmdRaceCheck(O,
                        O.Positional.empty() ? "" : O.Positional.front());
  }
  if (Cmd == "faultcheck") {
    if (O.Positional.size() > 1)
      return usage();
    if (!SawN)
      O.N = 1 << 12; // two functional runs per matrix cell; keep it quick
    return cmdFaultCheck(O,
                         O.Positional.empty() ? "" : O.Positional.front());
  }
  if (Cmd == "serve") {
    if (!SawN)
      O.N = 256; // many small jobs is the serving sweet spot
    return cmdServe(O);
  }
  return usage();
}
