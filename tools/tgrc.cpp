//===- tgrc.cpp - Tangram compiler driver --------------------------------===//
//
// Part of the tangram-reduction project. See README.md for license details.
//
//===----------------------------------------------------------------------===//
//
// Command-line driver for the Tangram reduction compiler:
//
//   tgrc [options] [file.tgr]
//
// Reads a Tangram codelet source (or the built-in canonical reduction
// spectrum when no file is given), runs the full pipeline, and prints the
// requested artifact.
//
// Options:
//   --dump-ast          normalized source after parse+sema
//   --dump-passes       per-codelet transform-pipeline findings
//   --list-variants     the enumerated search space (default)
//   --emit-cuda=NAME    CUDA for the variant with Fig. 6 label or name
//   --emit-bytecode=NAME  SIMT bytecode disassembly for the variant
//   --op=add|sub|max|min  reduction operator (built-in source only)
//   --type=float|int      element type (built-in source only)
//
//===----------------------------------------------------------------------===//

#include "codegen/CudaEmitter.h"
#include "lang/ASTPrinter.h"
#include "lang/Parser.h"
#include "sema/Sema.h"
#include "tangram/Tangram.h"
#include "transforms/Pipeline.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace tangram;
using namespace tangram::synth;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: tgrc [--dump-ast] [--dump-passes] [--list-variants]\n"
      "            [--emit-cuda=NAME] [--emit-bytecode=NAME]\n"
      "            [--op=add|sub|max|min] [--type=float|int] [file.tgr]\n");
  return 2;
}

const VariantDescriptor *findVariant(const SearchSpace &Space,
                                     const std::string &Name) {
  if (const VariantDescriptor *V = findByFigure6Label(Space, Name))
    return V;
  for (const VariantDescriptor &V : Space.Pruned)
    if (V.getName() == Name)
      return &V;
  return nullptr;
}

/// Checks a user-supplied source file: parse, sema, pass pipeline; prints
/// what was requested. (Variant synthesis requires the canonical spectrum
/// shape and stays on the built-in path.)
int runOnFile(const char *Path, bool DumpAst, bool DumpPasses) {
  std::ifstream File(Path);
  if (!File) {
    std::fprintf(stderr, "tgrc: cannot open '%s'\n", Path);
    return 1;
  }
  std::stringstream Text;
  Text << File.rdbuf();

  SourceManager SM(Path, Text.str());
  DiagnosticEngine Diags(SM);
  lang::ASTContext Ctx;
  lang::Parser P(SM, Ctx, Diags);
  lang::TranslationUnit TU = P.parseTranslationUnit();
  if (!Diags.hasErrors()) {
    sema::Sema S(Ctx, Diags);
    S.analyze(TU);
  }
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.renderAll().c_str());
    return 1;
  }
  std::printf("%zu codelet(s) checked\n", TU.Codelets.size());
  for (const lang::CodeletDecl *C : TU.Codelets)
    std::printf("  %-12s %-12s %s\n", C->getName().c_str(),
                C->getTag().empty() ? "-" : C->getTag().c_str(),
                lang::getCodeletClassName(C->getCodeletClass()));
  if (DumpAst)
    std::printf("\n%s", lang::printTranslationUnit(TU).c_str());
  if (DumpPasses) {
    auto Infos = transforms::runTransformPipeline(TU);
    for (const auto &[C, Info] : Infos) {
      std::printf("\n%s (%s):\n", C->getName().c_str(), C->getTag().c_str());
      if (Info.GlobalAtomic)
        std::printf("  Map atomic API: atomic%s%s\n",
                    getReduceOpName(Info.GlobalAtomic->Op),
                    Info.GlobalAtomic->SameComputation
                        ? " (subsumes the spectrum call)"
                        : "");
      for (const auto &W : Info.SharedAtomics.Writes)
        std::printf("  shared-atomic write on '%s' (atomic%s)\n",
                    W.Var->getName().c_str(), getReduceOpName(W.Op));
      for (const auto &O : Info.Shuffles)
        std::printf("  shuffle loop over '%s' (%s, array %s)\n",
                    O.Array->getName().c_str(),
                    O.Direction == ir::ShuffleMode::Down ? "shfl_down"
                                                         : "shfl_up",
                    O.ElideArray ? "elided" : "kept");
    }
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  bool DumpAst = false, DumpPasses = false, ListVariants = false;
  std::string EmitCuda, EmitBytecode, File;
  TangramReduction::Options Opts;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (!std::strcmp(Arg, "--dump-ast"))
      DumpAst = true;
    else if (!std::strcmp(Arg, "--dump-passes"))
      DumpPasses = true;
    else if (!std::strcmp(Arg, "--list-variants"))
      ListVariants = true;
    else if (!std::strncmp(Arg, "--emit-cuda=", 12))
      EmitCuda = Arg + 12;
    else if (!std::strncmp(Arg, "--emit-bytecode=", 16))
      EmitBytecode = Arg + 16;
    else if (!std::strncmp(Arg, "--op=", 5)) {
      std::string Op = Arg + 5;
      if (Op == "add")
        Opts.Op = ReduceOp::Add;
      else if (Op == "sub")
        Opts.Op = ReduceOp::Sub;
      else if (Op == "max")
        Opts.Op = ReduceOp::Max;
      else if (Op == "min")
        Opts.Op = ReduceOp::Min;
      else
        return usage();
    } else if (!std::strncmp(Arg, "--type=", 7)) {
      std::string Ty = Arg + 7;
      if (Ty == "float")
        Opts.Elem = ElemKind::Float;
      else if (Ty == "int")
        Opts.Elem = ElemKind::Int;
      else
        return usage();
    } else if (Arg[0] == '-')
      return usage();
    else
      File = Arg;
  }

  if (!File.empty())
    return runOnFile(File.c_str(), DumpAst, DumpPasses);

  std::string Error;
  auto TR = TangramReduction::create(Opts, Error);
  if (!TR) {
    std::fprintf(stderr, "%s", Error.c_str());
    return 1;
  }

  if (DumpAst) {
    std::printf("%s", lang::printTranslationUnit(TR->getUnit()).c_str());
    return 0;
  }
  if (DumpPasses) {
    // Reuse the file path with the canonical source via a temp round
    // trip: simpler to re-run the pipeline here.
    auto Infos = transforms::runTransformPipeline(TR->getUnit());
    for (const auto &[C, Info] : Infos) {
      std::printf("%s (%s): %zu shared-atomic write(s), %zu shuffle "
                  "opportunit(ies)%s\n",
                  C->getName().c_str(), C->getTag().c_str(),
                  Info.SharedAtomics.Writes.size(), Info.Shuffles.size(),
                  Info.GlobalAtomic ? ", Map atomic API" : "");
    }
    return 0;
  }
  if (!EmitCuda.empty()) {
    const VariantDescriptor *V = findVariant(TR->getSearchSpace(), EmitCuda);
    if (!V) {
      std::fprintf(stderr, "tgrc: unknown variant '%s'\n", EmitCuda.c_str());
      return 1;
    }
    std::printf("%s", TR->emitCudaFor(*V, Error).c_str());
    return 0;
  }
  if (!EmitBytecode.empty()) {
    const VariantDescriptor *V =
        findVariant(TR->getSearchSpace(), EmitBytecode);
    if (!V) {
      std::fprintf(stderr, "tgrc: unknown variant '%s'\n",
                   EmitBytecode.c_str());
      return 1;
    }
    auto S = TR->synthesize(*V, Error);
    if (!S) {
      std::fprintf(stderr, "%s\n", Error.c_str());
      return 1;
    }
    std::printf("%s", S->Compiled.disassemble().c_str());
    return 0;
  }

  // Default: list the search space.
  (void)ListVariants;
  const SearchSpace &Space = TR->getSearchSpace();
  std::printf("%zu versions enumerated, %zu after pruning:\n",
              Space.All.size(), Space.Pruned.size());
  for (const VariantDescriptor &V : Space.Pruned) {
    std::string L = V.getFigure6Label();
    std::printf("  %-4s %-20s %s\n", L.empty() ? "" : ("(" + L + ")").c_str(),
                V.getName().c_str(),
                getVariantCategoryName(V.getCategory()));
  }
  return 0;
}
